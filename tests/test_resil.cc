/**
 * @file
 * Tests for the resilience subsystem: checkpoint cost arithmetic and
 * the Young/Daly interval rule, seeded failure-schedule generation,
 * the recovery state machine (transient retry without rollback,
 * retry-budget escalation, fatal rollback with exact replay of the
 * iterations lost since the last completed checkpoint, absorbed
 * overlapping failures, async-checkpoint discard), goodput
 * conservation under random fault schedules, byte-determinism of the
 * goodput outputs, and the engine's overlapping-fail-stop restart
 * debt regression.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "coll/collective_engine.hh"
#include "core/cluster.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "hw/platform.hh"
#include "net/flow_network.hh"
#include "resil/checkpoint.hh"
#include "resil/failure_gen.hh"
#include "resil/goodput.hh"
#include "resil/recovery.hh"
#include "runtime/engine.hh"
#include "runtime/program_builder.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::unit_literals;
using resil::Bucket;
using resil::FailureEvent;
using resil::FailureKind;

/** Small model so experiment-level tests stay fast. */
model::TransformerConfig
smallModel()
{
    model::TransformerConfig c;
    c.name = "Small-3B";
    c.numLayers = 16;
    c.hiddenSize = 2560;
    c.numHeads = 20;
    c.numQueryGroups = 20;
    c.ffnHiddenSize = 4 * 2560;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

// ---- checkpoint cost model --------------------------------------------------

TEST(Checkpoint, StoragePathBottleneck)
{
    resil::StoragePath path{BytesPerSec(64e9), BytesPerSec(12.5e9),
                            BytesPerSec(100e9)};
    // 8 ranks share the NIC, 16 share the store: NIC wins the
    // bottleneck (12.5/8 = 1.5625 GB/s < 6.25 GB/s < 64 GB/s).
    resil::CheckpointModel m(Bytes(1e9), path, 8, 16);
    EXPECT_DOUBLE_EQ(m.effectiveRankBandwidth().value(), 12.5e9 / 8.0);
    EXPECT_DOUBLE_EQ(m.writeSeconds().value(), 1e9 / (12.5e9 / 8.0));
    EXPECT_DOUBLE_EQ(m.readSeconds().value(), m.writeSeconds().value());

    // A slow store flips the bottleneck.
    resil::StoragePath slow{BytesPerSec(64e9), BytesPerSec(12.5e9),
                            BytesPerSec(10e9)};
    resil::CheckpointModel s(Bytes(1e9), slow, 8, 16);
    EXPECT_DOUBLE_EQ(s.effectiveRankBandwidth().value(), 10e9 / 16.0);
}

TEST(Checkpoint, RankStateScalesWithOptimizerSharding)
{
    auto m = smallModel();
    auto par = parallel::ParallelConfig::forWorld(16, 2, 2);
    parallel::MemoryOptions opts;
    Bytes plain = resil::CheckpointModel::rankStateBytes(m, par, opts);
    EXPECT_GT(plain.value(), 0.0);
    parallel::MemoryOptions zero = opts;
    zero.zero1 = true;
    Bytes sharded =
        resil::CheckpointModel::rankStateBytes(m, par, zero);
    // ZeRO-1 shards the optimizer state across dp=4 ranks, so the
    // per-rank checkpoint shrinks (weights stay replicated).
    EXPECT_LT(sharded.value(), plain.value());
}

TEST(Checkpoint, YoungDalyClosedForm)
{
    // tau* = sqrt(2 * C * MTBF).
    EXPECT_DOUBLE_EQ(
        resil::CheckpointModel::youngDalyInterval(Seconds(2.0),
                                                  Seconds(100.0))
            .value(),
        std::sqrt(2.0 * 2.0 * 100.0));
    EXPECT_TRUE(std::isinf(
        resil::CheckpointModel::youngDalyInterval(Seconds(2.0),
                                                  Seconds(0.0))
            .value()));
}

TEST(Checkpoint, YoungDalyMinimizesFirstOrderWaste)
{
    // First-order overhead fraction of checkpointing every tau
    // seconds with write cost C on a machine with MTBF M:
    // waste(tau) = C/tau (write stalls) + tau/(2M) (expected lost
    // work per failure). The closed form must hit the numeric argmin
    // of that function.
    const double C = 1.7, M = 240.0;
    double best_tau = 0.0;
    double best = std::numeric_limits<double>::infinity();
    for (double tau = 0.5; tau <= 120.0; tau += 0.01) {
        double waste = C / tau + tau / (2.0 * M);
        if (waste < best) {
            best = waste;
            best_tau = tau;
        }
    }
    double closed = resil::CheckpointModel::youngDalyInterval(
                        Seconds(C), Seconds(M))
                        .value();
    EXPECT_NEAR(closed, best_tau, 0.02);
}

// ---- failure generation -----------------------------------------------------

TEST(FailureGen, ClusterFatalMtbfPoolsFatalClasses)
{
    resil::MtbfProfile p;
    p.gpuMtbfSec = 1000.0;
    p.nodeMtbfSec = 4000.0;
    p.linkMtbfSec = 10.0; // transient: excluded from the fatal rate
    // 16 GPUs at 1/1000 + 2 nodes at 1/4000 = 0.0165 faults/s.
    EXPECT_NEAR(p.clusterFatalMtbfSec(16, 2), 1.0 / 0.0165, 1e-9);
    resil::MtbfProfile none;
    EXPECT_DOUBLE_EQ(none.clusterFatalMtbfSec(16, 2), 0.0);
}

TEST(FailureGen, DeterministicSortedAndBounded)
{
    resil::MtbfProfile p;
    p.gpuMtbfSec = 50.0;
    p.linkMtbfSec = 30.0;
    p.nodeMtbfSec = 200.0;
    auto a = resil::FailureGenerator::generate(p, 16, 2, 100.0_s, 42);
    auto b = resil::FailureGenerator::generate(p, 16, 2, 100.0_s, 42);
    auto c = resil::FailureGenerator::generate(p, 16, 2, 100.0_s, 43);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_DOUBLE_EQ(a[i].timeSec, b[i].timeSec);
        EXPECT_DOUBLE_EQ(a[i].clearSec, b[i].clearSec);
    }
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].timeSec != c[i].timeSec;
    EXPECT_TRUE(differs);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a[i].timeSec, 0.0);
        EXPECT_LT(a[i].timeSec, 100.0);
        if (i > 0)
            EXPECT_GE(a[i].timeSec, a[i - 1].timeSec);
        if (a[i].kind == FailureKind::LinkTransient)
            EXPECT_GT(a[i].clearSec, 0.0);
        else
            EXPECT_DOUBLE_EQ(a[i].clearSec, 0.0);
    }
}

TEST(FailureGen, DisabledClassesNeverFire)
{
    resil::MtbfProfile p;
    p.linkMtbfSec = 5.0;
    auto events =
        resil::FailureGenerator::generate(p, 16, 2, 200.0_s, 7);
    ASSERT_FALSE(events.empty());
    for (const auto& e : events)
        EXPECT_EQ(e.kind, FailureKind::LinkTransient);
    resil::MtbfProfile off;
    EXPECT_TRUE(
        resil::FailureGenerator::generate(off, 16, 2, 200.0_s, 7)
            .empty());
}

// ---- retry backoff (closed form vs iterated product) ------------------------

TEST(RetryPolicy, ClosedFormBackoffMatchesIteratedProduct)
{
    resil::RetryPolicy p;
    p.initialBackoff = Seconds(0.25);
    p.backoffMultiplier = 2.0;
    p.maxBackoff = Seconds(1e12); // cap out of the way
    for (int attempt = 0; attempt < 40; ++attempt) {
        double iterated = p.initialBackoff.value();
        for (int i = 0; i < attempt; ++i)
            iterated *= p.backoffMultiplier;
        // Multiplier 2.0: both forms are exact powers of two.
        EXPECT_DOUBLE_EQ(p.backoff(attempt).value(), iterated)
            << "attempt " << attempt;
    }
    // Non-power-of-two multiplier: pow vs iterated product may differ
    // in the last ulp, never more.
    p.backoffMultiplier = 1.7;
    for (int attempt = 0; attempt < 30; ++attempt) {
        double iterated = p.initialBackoff.value();
        for (int i = 0; i < attempt; ++i)
            iterated *= p.backoffMultiplier;
        EXPECT_NEAR(p.backoff(attempt).value(), iterated,
                    1e-12 * iterated)
            << "attempt " << attempt;
    }
}

TEST(RetryPolicy, BackoffCapClampsLargeAttempts)
{
    resil::RetryPolicy p;
    p.initialBackoff = Seconds(0.25);
    p.backoffMultiplier = 2.0;
    p.maxBackoff = Seconds(30.0);
    // 0.25 * 2^7 = 32 > 30: attempt 7 and everything after clamps.
    EXPECT_DOUBLE_EQ(p.backoff(6).value(), 16.0);
    EXPECT_DOUBLE_EQ(p.backoff(7).value(), 30.0);
    EXPECT_DOUBLE_EQ(p.backoff(100).value(), 30.0);
    // The old loop formulation overflowed to inf around attempt 1100;
    // the closed form stays clamped.
    EXPECT_DOUBLE_EQ(p.backoff(2000).value(), 30.0);
}

// ---- recovery state machine (manual stack, explicit schedules) --------------

struct RecoveryRun
{
    std::vector<runtime::IterationSpan> spans;
    resil::GoodputReport report;
    double writeSec = 0.0;
    double wallSec = 0.0;
};

/**
 * Run a tiny 8-GPU engine under a RecoveryManager with an explicit
 * failure schedule and a fixed-cost checkpoint model (1 GB rank
 * state over a 2 GB/s bottleneck -> 0.5 s write/read), so tests can
 * reason about exact commit/rollback arithmetic.
 */
RecoveryRun
runRecovery(std::vector<FailureEvent> schedule, double interval_s,
            bool async = false, int iterations = 8,
            resil::RecoveryConfig cfg = {}, double horizon_s = 1e9)
{
    core::ClusterSpec cluster = core::h100Cluster(1);
    sim::Simulator simulator;
    net::Topology topo(cluster.network);
    hw::Platform plat(simulator, cluster.gpu, cluster.chassis,
                      cluster.numNodes);
    net::FlowNetwork netw(simulator, topo);
    coll::CollectiveEngine colls(simulator, netw);
    parallel::RankMapper map(
        parallel::ParallelConfig::forWorld(8, 2, 2));
    runtime::TrainOptions topts;
    topts.globalBatchSize = 16;
    runtime::ProgramBuilder builder(smallModel(), map, topts);
    runtime::EngineOptions eopts;
    eopts.warmupIterations = 1;
    eopts.measuredIterations = iterations - 1;
    runtime::TrainingEngine engine(plat, netw, colls, builder, eopts);

    resil::StoragePath path{BytesPerSec(64e9), BytesPerSec(16e9),
                            BytesPerSec(1000e9)};
    resil::CheckpointModel model(Bytes(1e9), path, 8, 8);
    resil::RecoveryManager manager(simulator, plat, netw, engine,
                                   model, Seconds(interval_s), async,
                                   0.05_s, cfg, std::move(schedule),
                                   Seconds(horizon_s), 0x5eed0fa1u);
    plat.start();
    engine.run();

    RecoveryRun run;
    run.spans = engine.iterationSpans();
    run.report = manager.finalize({});
    run.writeSec = model.writeSeconds().value();
    run.wallSec = manager.wallEndSec();
    return run;
}

TEST(Recovery, HealthyRunIsAllUseful)
{
    auto run = runRecovery({}, 1e9);
    const auto& rep = run.report;
    EXPECT_DOUBLE_EQ(rep.ettr(), 1.0);
    EXPECT_DOUBLE_EQ(rep.slice(Bucket::Useful).seconds, rep.wallSec);
    EXPECT_EQ(rep.stats.rollbacks, 0);
    EXPECT_EQ(rep.stats.checkpointsCommitted, 0);
    for (const auto& span : run.spans) {
        EXPECT_FALSE(span.aborted);
        EXPECT_FALSE(span.replay);
    }
}

TEST(Recovery, CheckpointCadencePaysWriteStalls)
{
    auto healthy = runRecovery({}, 1e9);
    auto run = runRecovery({}, 1.0);
    const auto& rep = run.report;
    ASSERT_GT(rep.stats.checkpointsCommitted, 0);
    // Sync checkpoints: each committed checkpoint paused the run for
    // exactly one write. (Loose tolerance on the wall comparison:
    // GPUs cool during the stalls, so post-pause iterations run
    // microseconds faster than the healthy run's.)
    EXPECT_NEAR(rep.slice(Bucket::Checkpoint).seconds,
                rep.stats.checkpointsCommitted * run.writeSec, 1e-9);
    EXPECT_NEAR(run.wallSec,
                healthy.wallSec +
                    rep.stats.checkpointsCommitted * run.writeSec,
                1e-3);
    // Useful time is unchanged: stalls never distort iteration time.
    EXPECT_NEAR(rep.slice(Bucket::Useful).seconds, healthy.wallSec,
                1e-3);
}

TEST(Recovery, TransientRetryRecoversWithoutRollback)
{
    auto healthy = runRecovery({}, 1e9);
    double mid = healthy.wallSec / 2.0;
    // Outage clears 0.6 s in; detection at +0.5 s, first retry at
    // +0.75 s >= clear -> attempt 1 succeeds.
    auto run =
        runRecovery({{FailureKind::LinkTransient, 0, mid, 0.6}}, 1e9);
    const auto& s = run.report.stats;
    EXPECT_EQ(s.transientFaults, 1);
    EXPECT_EQ(s.transientRecovered, 1);
    EXPECT_EQ(s.retriesAttempted, 1);
    EXPECT_EQ(s.retriesEscalated, 0);
    EXPECT_EQ(s.rollbacks, 0);
    EXPECT_EQ(s.iterationsReplayed, 0);
    for (const auto& span : run.spans) {
        EXPECT_FALSE(span.aborted);
        EXPECT_FALSE(span.replay);
    }
    // The detection + retry windows are accounted.
    EXPECT_NEAR(run.report.slice(Bucket::Detection).seconds, 0.5,
                1e-9);
    EXPECT_NEAR(run.report.slice(Bucket::Retry).seconds, 0.25, 1e-9);
}

TEST(Recovery, RetryBudgetExhaustionEscalatesToRollback)
{
    auto healthy = runRecovery({}, 1e9);
    double mid = healthy.wallSec / 2.0;
    // The outage never clears inside the backoff budget; a fast
    // retry cadence keeps the whole escalation inside the run.
    resil::RecoveryConfig cfg;
    cfg.retry.initialBackoff = Seconds(0.05);
    auto run = runRecovery(
        {{FailureKind::LinkTransient, 0, mid, 1e9}}, 1e9, false, 8,
        cfg);
    const auto& s = run.report.stats;
    EXPECT_EQ(s.transientFaults, 1);
    EXPECT_EQ(s.transientRecovered, 0);
    EXPECT_EQ(s.retriesAttempted, 4);
    EXPECT_EQ(s.retriesEscalated, 1);
    EXPECT_EQ(s.rollbacks, 1);
    EXPECT_GT(run.wallSec, healthy.wallSec);
}

TEST(Recovery, FatalFaultReplaysExactlyTheLostIterations)
{
    auto healthy = runRecovery({}, 1e9, false, 10);
    double mid = healthy.wallSec * 0.6;
    auto run = runRecovery({{FailureKind::GpuFatal, 3, mid, 0.0}},
                           2.0, false, 10);
    const auto& rep = run.report;
    ASSERT_EQ(rep.stats.rollbacks, 1);
    ASSERT_EQ(rep.stats.fatalFaults, 1);

    // Locate the abort and count what was committed before it.
    double abort_s = -1.0;
    for (const auto& span : run.spans) {
        if (span.aborted) {
            EXPECT_LT(abort_s, 0.0) << "more than one aborted span";
            abort_s = span.endSec;
        }
    }
    ASSERT_GT(abort_s, 0.0);
    int committed_before = 0;
    for (const auto& span : run.spans) {
        if (!span.aborted && !span.replay &&
            span.endSec <= abort_s + 1e-9)
            ++committed_before;
    }

    // Reconstruct the rollback target from observable output: sync
    // checkpoints commit when their write window (a Checkpoint
    // timeline segment) ends, covering every iteration span fully
    // committed before the write began.
    int covered = 0;
    for (const auto& seg : rep.timeline) {
        if (seg.bucket != Bucket::Checkpoint ||
            seg.endSec > abort_s + 1e-9)
            continue;
        int n = 0;
        for (const auto& span : run.spans) {
            if (!span.aborted && !span.replay &&
                span.endSec <= seg.startSec + 1e-9)
                ++n;
        }
        covered = std::max(covered, n);
    }
    ASSERT_GT(rep.stats.checkpointsCommitted, 0);

    // Exactness: replayed == committed-at-abort - checkpoint-covered.
    EXPECT_EQ(rep.stats.iterationsReplayed,
              committed_before - covered);
    EXPECT_EQ(rep.stats.iterationsAborted, 1);

    // The replayed spans re-execute exactly the lost indices, in
    // order, immediately after recovery.
    std::vector<int> replayed;
    for (const auto& span : run.spans) {
        if (span.replay)
            replayed.push_back(span.index);
    }
    ASSERT_EQ(static_cast<int>(replayed.size()),
              rep.stats.iterationsReplayed);
    for (std::size_t i = 0; i < replayed.size(); ++i)
        EXPECT_EQ(replayed[i], covered + static_cast<int>(i));

    // All ten iterations still committed exactly once in the end.
    int final_commits = 0;
    for (const auto& span : run.spans) {
        if (!span.aborted)
            ++final_commits;
    }
    EXPECT_EQ(final_commits, 10 + rep.stats.iterationsReplayed);
}

TEST(Recovery, OverlappingFatalIsAbsorbedIntoOneRollback)
{
    auto healthy = runRecovery({}, 1e9);
    double mid = healthy.wallSec / 2.0;
    // The second GPU dies while the first fault's recovery window is
    // open: one maintenance window covers both.
    auto run = runRecovery({{FailureKind::GpuFatal, 2, mid, 0.0},
                            {FailureKind::GpuFatal, 5, mid + 1.0, 0.0}},
                           2.0);
    const auto& s = run.report.stats;
    EXPECT_EQ(s.failuresInjected, 2);
    EXPECT_EQ(s.failuresAbsorbed, 1);
    EXPECT_EQ(s.rollbacks, 1);
}

TEST(Recovery, AsyncCheckpointKilledMidWriteIsDiscarded)
{
    // Find when the first async quiesce ends on a healthy run; the
    // background write then runs for writeSec. A fault detected
    // inside that window must discard the in-flight checkpoint and
    // roll back to the previous one (step 0 here).
    auto base = runRecovery({}, 2.0, true, 10);
    ASSERT_GT(base.report.stats.checkpointsCommitted, 0);
    double quiesce_end = -1.0;
    for (const auto& seg : base.report.timeline) {
        if (seg.bucket == Bucket::Checkpoint) {
            quiesce_end = seg.endSec;
            break;
        }
    }
    ASSERT_GT(quiesce_end, 0.0);
    // Fault inside the quiesce stall (a timer, so the pre-fault
    // trajectory is untouched): detection 0.5 s later lands just
    // inside the (quiesce_end, quiesce_end + 0.5) write window.
    auto run = runRecovery(
        {{FailureKind::GpuFatal, 1, quiesce_end - 0.02, 0.0}}, 2.0,
        true, 10);
    EXPECT_EQ(run.report.stats.checkpointsDiscarded, 1);
    EXPECT_EQ(run.report.stats.rollbacks, 1);
    // Everything committed before the abort is replayed: the only
    // durable checkpoint was the implicit step-0 one.
    double abort_s = -1.0;
    for (const auto& span : run.spans) {
        if (span.aborted)
            abort_s = span.endSec;
    }
    ASSERT_GT(abort_s, 0.0);
    int committed_before = 0;
    for (const auto& span : run.spans) {
        if (!span.aborted && !span.replay &&
            span.endSec <= abort_s + 1e-9)
            ++committed_before;
    }
    EXPECT_EQ(run.report.stats.iterationsReplayed, committed_before);
}

TEST(Recovery, AsyncQuiesceStallsLessThanSyncWrite)
{
    auto sync = runRecovery({}, 1.0, false);
    auto async = runRecovery({}, 1.0, true);
    ASSERT_GT(async.report.stats.checkpointsCommitted, 0);
    // Async checkpoints stall only the 0.05 s quiesce per commit.
    EXPECT_LT(async.report.slice(Bucket::Checkpoint).seconds,
              sync.report.slice(Bucket::Checkpoint).seconds);
    EXPECT_LT(async.wallSec, sync.wallSec);
}

TEST(RecoveryDeathTest, HorizonShorterThanRunIsRejected)
{
    // The failure schedule was generated over [0, 0.001 s) but the
    // run is much longer: finalize() must refuse instead of silently
    // under-counting late failures.
    EXPECT_DEATH(runRecovery({}, 1e9, false, 8, {}, 0.001),
                 "horizon");
}

// ---- goodput conservation + determinism (experiment level) ------------------

core::ExperimentConfig
resilientConfig(std::uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.cluster = core::h100Cluster(2);
    cfg.model = smallModel();
    cfg.par = parallel::ParallelConfig::forWorld(16, 2, 2);
    cfg.train.globalBatchSize = 16;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 6;
    cfg.enableSampler = true;
    cfg.samplePeriodSec = 0.02;
    cfg.resilience.enabled = true;
    cfg.resilience.seed = seed;
    cfg.resilience.mtbf.gpuMtbfSec = 60.0;
    cfg.resilience.mtbf.linkMtbfSec = 40.0;
    cfg.resilience.mtbf.nodeMtbfSec = 600.0;
    cfg.resilience.checkpoint.intervalSec = 1.5;
    return cfg;
}

TEST(GoodputProperty, BucketsConserveTimeAndEnergyAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto result = core::Experiment::run(resilientConfig(seed));
        ASSERT_TRUE(result.feasible);
        ASSERT_TRUE(result.goodputValid);
        const auto& g = result.goodput;
        double sec = 0.0, joules = 0.0;
        for (std::size_t b = 0; b < resil::kNumBuckets; ++b) {
            sec += g.buckets[b].seconds;
            joules += g.buckets[b].energyJ;
        }
        EXPECT_NEAR(sec / g.wallSec, 1.0, 1e-9) << "seed " << seed;
        ASSERT_GT(g.totalEnergyJ, 0.0);
        EXPECT_NEAR(joules / g.totalEnergyJ, 1.0, 1e-9)
            << "seed " << seed;
        EXPECT_GE(g.ettr(), 0.0);
        EXPECT_LE(g.ettr(), 1.0);
        // The timeline partitions [0, wall) without gaps.
        double cursor = 0.0;
        for (const auto& seg : g.timeline) {
            EXPECT_DOUBLE_EQ(seg.startSec, cursor);
            cursor = seg.endSec;
        }
        EXPECT_DOUBLE_EQ(cursor, g.wallSec);
    }
}

TEST(GoodputProperty, ByteIdenticalAcrossRuns)
{
    auto a = core::Experiment::run(resilientConfig(3));
    auto b = core::Experiment::run(resilientConfig(3));
    ASSERT_TRUE(a.goodputValid && b.goodputValid);
    EXPECT_EQ(a.goodput.toCsv().str(), b.goodput.toCsv().str());
    EXPECT_EQ(a.goodput.toJson(), b.goodput.toJson());
    EXPECT_EQ(core::runReportJson(a), core::runReportJson(b));
}

TEST(GoodputProperty, ReportOutputsCarryGoodput)
{
    auto result = core::Experiment::run(resilientConfig(2));
    ASSERT_TRUE(result.goodputValid);
    std::string json = core::runReportJson(result);
    EXPECT_NE(json.find("\"goodput\""), std::string::npos);
    EXPECT_NE(json.find("\"rollback_replay\""), std::string::npos);
    std::string csv = result.goodput.toCsv().str();
    EXPECT_NE(csv.find("bucket,seconds,share"), std::string::npos);
    EXPECT_NE(csv.find("useful"), std::string::npos);
}

// ---- engine restart-debt regression (satellite fix) -------------------------

TEST(EngineRestartDebt, OverlappingFailStopsPayMaxNotSum)
{
    core::ClusterSpec cluster = core::h100Cluster(1);
    sim::Simulator simulator;
    net::Topology topo(cluster.network);
    hw::Platform plat(simulator, cluster.gpu, cluster.chassis,
                      cluster.numNodes);
    net::FlowNetwork netw(simulator, topo);
    coll::CollectiveEngine colls(simulator, netw);
    parallel::RankMapper map(
        parallel::ParallelConfig::forWorld(8, 2, 2));
    runtime::TrainOptions topts;
    topts.globalBatchSize = 16;
    runtime::ProgramBuilder builder(smallModel(), map, topts);
    runtime::EngineOptions eopts;
    runtime::TrainingEngine engine(plat, netw, colls, builder, eopts);

    // Two fail-stops land in the same inter-iteration window: the
    // cluster restarts once, so the debt is the max restart cost,
    // not the sum (the old code double-paid 5 s here).
    engine.notifyFailStop(2.0_s);
    engine.notifyFailStop(3.0_s);
    EXPECT_DOUBLE_EQ(engine.pendingRestartSeconds(), 3.0);
    engine.notifyFailStop(1.0_s);
    EXPECT_DOUBLE_EQ(engine.pendingRestartSeconds(), 3.0);
}

} // namespace
