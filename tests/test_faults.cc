/**
 * @file
 * Tests for the fault-injection subsystem: deterministic scenario
 * expansion, per-kind degradation effects, runtime graceful
 * degradation (stalls, restart costs), elastic re-mapping, and cause
 * attribution in the telemetry outputs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.hh"
#include "core/experiment.hh"
#include "faults/fault_injector.hh"
#include "faults/scenarios.hh"
#include "net/flow_network.hh"
#include "net/topology.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::faults;
using namespace charllm::unit_literals;

/** Small model so experiment-level tests stay fast. */
model::TransformerConfig
smallModel()
{
    model::TransformerConfig c;
    c.name = "Small-3B";
    c.numLayers = 16;
    c.hiddenSize = 2560;
    c.numHeads = 20;
    c.numQueryGroups = 20;
    c.ffnHiddenSize = 4 * 2560;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

/** Two-node H100 config: the PP boundary crosses the IB fabric. */
core::ExperimentConfig
h100Config()
{
    core::ExperimentConfig cfg;
    cfg.cluster = core::h100Cluster(2);
    cfg.model = smallModel();
    cfg.par = parallel::ParallelConfig::forWorld(16, 2, 2);
    cfg.train.globalBatchSize = 16;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 2;
    return cfg;
}

/** Serialize a result's telemetry series exactly like Sampler::toCsv. */
std::string
seriesCsv(const core::ExperimentResult& r)
{
    CsvWriter csv;
    csv.header({"time_s", "gpu", "power_w", "temp_c", "clock_ghz",
                "occupancy", "pcie_bps", "scaleup_bps", "fault"});
    for (std::size_t g = 0; g < r.series.size(); ++g) {
        for (const auto& s : r.series[g]) {
            csv.beginRow();
            csv.cell(s.time.value());
            csv.cell(static_cast<int>(g));
            csv.cell(s.powerWatts.value());
            csv.cell(s.tempC.value());
            csv.cell(s.clockGhz);
            csv.cell(s.occupancy);
            csv.cell(s.pcieRate.value());
            csv.cell(s.scaleUpRate.value());
            csv.cell(std::string(s.fault));
            csv.endRow();
        }
    }
    return csv.str();
}

// ---- injector unit tests ---------------------------------------------------

struct InjectorFixture : ::testing::Test
{
    InjectorFixture()
        : cluster(core::h100Cluster(1)), topo(cluster.network),
          plat(sim, cluster.gpu, cluster.chassis, cluster.numNodes),
          netw(sim, topo), injector(sim, plat, netw)
    {
    }

    core::ClusterSpec cluster;
    sim::Simulator sim;
    net::Topology topo;
    hw::Platform plat;
    net::FlowNetwork netw;
    FaultInjector injector;
};

TEST_F(InjectorFixture, StragglerDeratesDeviceDuringWindow)
{
    FaultScenario s = scenarios::straggler(1, 0.5, 0.1);
    s.faults[0].durationSec = 0.2; // recover at t = 0.3
    injector.apply(s);

    double during = -1.0, after = -1.0;
    std::string label_during, label_after;
    sim.scheduleAt(sim::toTicks(0.2), [&] {
        during = plat.gpu(1).clockRel().value();
        label_during = injector.activeGpuFault(1);
    });
    sim.scheduleAt(sim::toTicks(0.4), [&] {
        after = plat.gpu(1).clockRel().value();
        label_after = injector.activeGpuFault(1);
    });
    sim.run();

    EXPECT_NEAR(during, 0.5, 1e-9);
    EXPECT_EQ(label_during, "gpu-slowdown");
    EXPECT_NEAR(after, 1.0, 1e-9);
    EXPECT_EQ(label_after, "");
    ASSERT_EQ(injector.log().size(), 1u);
    EXPECT_EQ(injector.log()[0].kind, FaultKind::GpuSlowdown);
}

TEST_F(InjectorFixture, HotInletRaisesInletTemperature)
{
    std::vector<Watts> powers(
        static_cast<std::size_t>(plat.numGpus()), Watts(100.0));
    double before = plat.thermal().inletTemperature(0, powers).value();
    injector.apply(scenarios::hotInlet(0, 14.0_dC, 0.0));
    sim.run();
    EXPECT_NEAR(plat.thermal().inletTemperature(0, powers).value(),
                before + 14.0, 1e-9);
    EXPECT_DOUBLE_EQ(plat.thermal().inletOffset(0).value(), 14.0);
}

TEST_F(InjectorFixture, FlapScheduleIsSeedReproducible)
{
    auto expand = [](std::uint64_t seed) {
        core::ClusterSpec cl = core::h100Cluster(1);
        sim::Simulator s;
        net::Topology topo(cl.network);
        hw::Platform plat(s, cl.gpu, cl.chassis, cl.numNodes);
        net::FlowNetwork netw(s, topo);
        FaultInjector inj(s, plat, netw);
        FaultScenario sc = scenarios::flappingLink(topo.nicOutLink(0),
                                                   0.25, 0.05_s, 1.0_s);
        sc.seed = seed;
        inj.apply(sc);
        return inj.log();
    };
    auto a = expand(42), b = expand(42), c = expand(43);
    ASSERT_GT(a.size(), 5u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].startSec, b[i].startSec);
        EXPECT_DOUBLE_EQ(a[i].endSec, b[i].endSec);
    }
    // A different seed realizes different jitter.
    bool differs = a.size() != c.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].startSec != c[i].startSec;
    EXPECT_TRUE(differs);
}

TEST_F(InjectorFixture, LogCsvHasStableColumns)
{
    injector.apply(scenarios::fanFailure(2, 1.8, 0.0));
    auto csv = injector.logCsv();
    EXPECT_EQ(csv.numColumns(), 5u);
    EXPECT_EQ(csv.numRows(), 1u);
    EXPECT_NE(csv.str().find("fan-failure"), std::string::npos);
    sim.run();
    EXPECT_DOUBLE_EQ(plat.thermal().resistanceScale(2), 1.8);
}

// ---- experiment-level behaviour --------------------------------------------

TEST(FaultExperiment, StragglerSlowsTraining)
{
    auto healthy = core::Experiment::run(h100Config());
    ASSERT_TRUE(healthy.feasible);

    auto cfg = h100Config();
    cfg.faultScenario = scenarios::straggler(3, 0.5);
    auto degraded = core::Experiment::run(cfg);
    ASSERT_TRUE(degraded.feasible);
    // Synchronous training runs at the straggler's pace.
    EXPECT_GT(degraded.avgIterationSeconds,
              healthy.avgIterationSeconds * 1.3);
    ASSERT_EQ(degraded.faultLog.size(), 1u);
    EXPECT_EQ(degraded.faultLog[0].kind, FaultKind::GpuSlowdown);
}

TEST(FaultExperiment, DegradedPodSlowsStepTimeWithAttribution)
{
    auto healthy = core::Experiment::run(h100Config());
    ASSERT_TRUE(healthy.feasible);

    // The acceptance scenario: one hot-inlet GPU plus one flapping IB
    // link, on a run whose pipeline boundary crosses that link.
    auto cfg = h100Config();
    net::Topology topo(cfg.cluster.network);
    cfg.faultScenario = scenarios::degradedPod(topo, 2.0_s);
    cfg.enableSampler = true;
    cfg.enableTrace = true;
    auto degraded = core::Experiment::run(cfg);
    ASSERT_TRUE(degraded.feasible);

    EXPECT_GT(degraded.avgIterationSeconds, healthy.avgIterationSeconds);
    EXPECT_GE(degraded.faultLog.size(), 2u);

    // Cause attribution: the hot-inlet GPU's samples carry the label.
    bool attributed = false;
    for (const auto& s : degraded.series[0])
        attributed |= std::string(s.fault) == "hot-inlet";
    EXPECT_TRUE(attributed);

    // The trace overlays fault spans for both scenario legs.
    ASSERT_TRUE(degraded.trace);
    EXPECT_FALSE(degraded.trace->faultSpans().empty());
    std::string json = degraded.trace->toChromeJson();
    EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
    EXPECT_NE(json.find("hot-inlet"), std::string::npos);
    EXPECT_NE(json.find("link-flap"), std::string::npos);
}

TEST(FaultExperiment, SameSeedProducesByteIdenticalOutputs)
{
    auto make = [] {
        auto cfg = h100Config();
        net::Topology topo(cfg.cluster.network);
        cfg.faultScenario = scenarios::degradedPod(topo, 2.0_s);
        cfg.faultScenario.faults.push_back(
            scenarios::eccStorm(5, 0.002_s, 0.05_s, 1.0_s).faults[0]);
        cfg.enableSampler = true;
        cfg.enableTrace = true;
        return core::Experiment::run(cfg);
    };
    auto a = make(), b = make();
    ASSERT_TRUE(a.feasible);
    EXPECT_EQ(a.iterationSeconds, b.iterationSeconds);
    EXPECT_EQ(seriesCsv(a), seriesCsv(b));
    EXPECT_EQ(a.trace->toChromeJson(), b.trace->toChromeJson());
    ASSERT_EQ(a.faultLog.size(), b.faultLog.size());
    for (std::size_t i = 0; i < a.faultLog.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.faultLog[i].startSec, b.faultLog[i].startSec);
        EXPECT_DOUBLE_EQ(a.faultLog[i].endSec, b.faultLog[i].endSec);
    }
}

TEST(FaultExperiment, EccStormStallsTraining)
{
    auto healthy = core::Experiment::run(h100Config());
    auto cfg = h100Config();
    // Frequent multi-ms stalls on one device throughout the run.
    cfg.faultScenario = scenarios::eccStorm(0, 0.005_s, 0.02_s, 2.0_s);
    auto degraded = core::Experiment::run(cfg);
    ASSERT_TRUE(degraded.feasible);
    EXPECT_GT(degraded.avgIterationSeconds, healthy.avgIterationSeconds);
    EXPECT_GT(degraded.faultLog.size(), 10u);
}

TEST(FaultExperiment, FailStopPaysRestartCost)
{
    auto healthy = core::Experiment::run(h100Config());
    auto cfg = h100Config();
    cfg.faultScenario = scenarios::failStop(1, 0.2_s, 0.0);
    auto degraded = core::Experiment::run(cfg);
    ASSERT_TRUE(degraded.feasible);
    // The checkpoint/restart pause plus the outage derate dominate.
    EXPECT_GT(degraded.avgIterationSeconds, healthy.avgIterationSeconds);

    // Elastic re-mapping still completes and logs the same fault.
    cfg.elasticRemap = true;
    auto remapped = core::Experiment::run(cfg);
    ASSERT_TRUE(remapped.feasible);
    ASSERT_EQ(remapped.faultLog.size(), 1u);
    EXPECT_EQ(remapped.faultLog[0].kind, FaultKind::GpuFailStop);
}

} // namespace
