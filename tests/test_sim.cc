/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, cancellation,
 * determinism, periodic tickers, and run control.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(100, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    auto h = q.scheduleAt(10, [&] { fired = true; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.runAll();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUpdatesPendingCount)
{
    EventQueue q;
    auto a = q.scheduleAt(1, [] {});
    auto b = q.scheduleAt(2, [] {});
    EXPECT_EQ(q.numPending(), 2u);
    a.cancel();
    EXPECT_EQ(q.numPending(), 1u);
    a.cancel(); // double-cancel is a no-op
    EXPECT_EQ(q.numPending(), 1u);
    q.runAll();
    EXPECT_EQ(q.numPending(), 0u);
    (void)b;
}

TEST(EventQueue, ScheduleFromWithinEvent)
{
    EventQueue q;
    std::vector<Tick> times;
    q.scheduleAt(5, [&] {
        times.push_back(q.now());
        q.schedule(7, [&] { times.push_back(q.now()); });
    });
    q.runAll();
    EXPECT_EQ(times, (std::vector<Tick>{5, 12}));
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(20, [&] { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 15u);
    q.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, TickConversionRoundTrips)
{
    EXPECT_EQ(toTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(toTicks(1e-9), 1u);
    EXPECT_DOUBLE_EQ(toSeconds(2'500'000'000ULL), 2.5);
    EXPECT_EQ(toTicks(toSeconds(123456789ULL)), 123456789ULL);
}

TEST(Simulator, PeriodicTickerFiresWhileWorkRemains)
{
    Simulator s;
    int ticks = 0;
    s.every(toTicks(0.001), [&] { ++ticks; });
    // A long-running chain of work events spanning 10 ms.
    bool finished = false;
    std::function<void(int)> chain = [&](int remaining) {
        if (remaining == 0) {
            finished = true;
            return;
        }
        s.schedule(toTicks(0.002), [&, remaining] {
            chain(remaining - 1);
        });
    };
    chain(5);
    s.run();
    EXPECT_TRUE(finished);
    // Ticker fires roughly once per ms across the 10 ms of work.
    EXPECT_GE(ticks, 8);
    EXPECT_LE(ticks, 12);
}

TEST(Simulator, TickerDoesNotKeepSimulationAlive)
{
    Simulator s;
    int ticks = 0;
    s.every(toTicks(0.001), [&] { ++ticks; });
    s.schedule(toTicks(0.0005), [] {});
    s.run(); // must terminate
    EXPECT_LE(ticks, 2);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Simulator s;
        std::vector<Tick> log;
        for (int i = 0; i < 20; ++i) {
            s.schedule(toTicks(0.001 * (20 - i)), [&log, &s] {
                log.push_back(s.now());
            });
        }
        s.run();
        return log;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
