/**
 * @file
 * Equivalence tests for the incremental max-min flow solver. The same
 * seeded random traffic (arrivals, natural departures, mid-flight link
 * derates) is driven through the incremental solver and through a twin
 * forced to run the full water-fill on every change (the
 * pre-incremental behaviour); completion times, completion order, and
 * the O(1) telemetry caches must match exactly — not approximately —
 * since the fast paths are required to be bit-identical.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "net/calibration.hh"
#include "net/flow_network.hh"
#include "net/topology.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::net;

constexpr int kNumGpus = 16; // hgxParams(2)

struct Arrival
{
    double atSec = 0.0;
    int src = 0;
    int dst = 0;
    double bytes = 0.0;
};

struct DerateEvent
{
    double atSec = 0.0;
    int node = 0;
    double factor = 1.0;
};

struct Workload
{
    std::vector<Arrival> arrivals;
    std::vector<DerateEvent> derates;
};

Workload
makeWorkload(std::uint64_t seed, int flows)
{
    Rng rng(seed);
    Workload w;
    for (int i = 0; i < flows; ++i) {
        Arrival a;
        a.atSec = rng.uniform(0.0, 0.05);
        a.src = static_cast<int>(rng.below(kNumGpus));
        // Includes src == dst (local-copy degenerate path) and both
        // intra-node (NVLink) and inter-node (PCIe+NIC) routes.
        a.dst = static_cast<int>(rng.below(kNumGpus));
        a.bytes = rng.uniform(1e6, 3e8);
        w.arrivals.push_back(a);
    }
    // NIC derates toggled mid-traffic (flapping-port style).
    for (int i = 0; i < 4; ++i) {
        int node = static_cast<int>(rng.below(2));
        double at = rng.uniform(0.01, 0.08);
        w.derates.push_back({at, node, rng.uniform(0.25, 0.75)});
        w.derates.push_back(
            {at + rng.uniform(0.005, 0.02), node, 1.0});
    }
    return w;
}

struct RunTrace
{
    /** (completion time, arrival index) in callback order. */
    std::vector<std::pair<double, int>> completions;
    /** Flattened telemetry probes (gpuRate x class, link util). */
    std::vector<double> probes;
    std::uint64_t fullRecomputes = 0;
    std::uint64_t fastJoins = 0;
    std::uint64_t fastCompletions = 0;
};

RunTrace
runWorkload(const Workload& w, bool force_full)
{
    sim::Simulator s;
    Topology topo(Topology::hgxParams(2));
    FlowNetwork netw(s, topo);
    netw.setForceFullRecompute(force_full);

    RunTrace trace;
    for (std::size_t i = 0; i < w.arrivals.size(); ++i) {
        const Arrival& a = w.arrivals[i];
        s.schedule(sim::toTicks(a.atSec), [&, i] {
            const Arrival& arr = w.arrivals[i];
            netw.transfer(arr.src, arr.dst, Bytes(arr.bytes),
                          [&trace, &s, i] {
                              trace.completions.emplace_back(
                                  s.nowSeconds(), static_cast<int>(i));
                          });
        });
    }
    for (const DerateEvent& d : w.derates) {
        s.schedule(sim::toTicks(d.atSec), [&netw, &topo, d] {
            netw.setLinkDerate(topo.nicOutLink(d.node), d.factor);
        });
    }
    // Probe the O(1) telemetry caches while traffic is in flight.
    for (int p = 1; p <= 20; ++p) {
        s.schedule(sim::toTicks(0.005 * p), [&] {
            for (int g = 0; g < kNumGpus; ++g)
                for (std::size_t c = 0; c < hw::kNumTrafficClasses;
                     ++c)
                    trace.probes.push_back(
                        netw.gpuRate(g,
                                     static_cast<hw::TrafficClass>(c))
                            .value());
            for (std::size_t l = 0; l < topo.links().size(); ++l)
                trace.probes.push_back(
                    netw.linkUtilization(static_cast<LinkId>(l)));
        });
    }
    s.run();
    EXPECT_EQ(netw.numActiveFlows(), 0u);
    trace.fullRecomputes = netw.numFullRecomputes();
    trace.fastJoins = netw.numFastJoins();
    trace.fastCompletions = netw.numFastCompletions();
    return trace;
}

TEST(FlowIncremental, RandomTrafficMatchesForcedFullRecompute)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 20250806ULL}) {
        Workload w = makeWorkload(seed, 60);
        RunTrace inc = runWorkload(w, /*force_full=*/false);
        RunTrace full = runWorkload(w, /*force_full=*/true);

        // Exact equality: times are compared bitwise, not NEAR.
        EXPECT_EQ(inc.completions, full.completions)
            << "seed " << seed;
        EXPECT_EQ(inc.probes, full.probes) << "seed " << seed;

        // The comparison must actually exercise the fast paths.
        EXPECT_GT(inc.fastJoins + inc.fastCompletions, 0u)
            << "seed " << seed;
        EXPECT_EQ(full.fastJoins, 0u);
        EXPECT_EQ(full.fastCompletions, 0u);
        EXPECT_LT(inc.fullRecomputes, full.fullRecomputes)
            << "seed " << seed;
    }
}

TEST(FlowIncremental, LiveRatesMatchReferenceWaterfill)
{
    // referenceRates() recomputes the allocation from scratch; probed
    // against the live gpuRate cache it pins the incremental
    // invariant directly (every flow's rate shows up in the Pcie or
    // scale-up aggregate of its source GPU).
    sim::Simulator s;
    Topology topo(Topology::hgxParams(2));
    FlowNetwork netw(s, topo);

    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
        int src = static_cast<int>(rng.below(kNumGpus));
        int dst = static_cast<int>(rng.below(kNumGpus));
        if (dst == src)
            dst = (dst + 1) % kNumGpus;
        double bytes = rng.uniform(5e6, 2e8);
        s.schedule(sim::toTicks(rng.uniform(0.0, 0.03)),
                   [&netw, src, dst, bytes] {
                       netw.transfer(src, dst, Bytes(bytes), [] {});
                   });
    }
    int checked_probes = 0;
    for (int p = 1; p <= 10; ++p) {
        s.schedule(sim::toTicks(0.004 * p), [&] {
            auto ref = netw.referenceRates();
            if (ref.empty())
                return;
            ++checked_probes;
            // Total reference throughput equals the sum of per-GPU
            // egress aggregates (each flow leaves its source through
            // exactly one first link, owned by the source GPU).
            double ref_total = 0.0;
            for (const auto& [id, rate] : ref)
                ref_total += rate;
            double agg_total = 0.0;
            for (int g = 0; g < kNumGpus; ++g)
                for (std::size_t c = 0; c < hw::kNumTrafficClasses;
                     ++c)
                    agg_total +=
                        netw.gpuRate(g,
                                     static_cast<hw::TrafficClass>(c))
                            .value();
            // Aggregates may count a flow at both endpoints and on
            // intermediate classes, so compare a strict lower bound
            // and per-flow positivity instead of exact totals.
            EXPECT_GE(agg_total, ref_total * (1.0 - 1e-12));
            for (const auto& [id, rate] : ref)
                EXPECT_GT(rate, 0.0);
        });
    }
    s.run();
    EXPECT_GT(checked_probes, 0);
    EXPECT_EQ(netw.numActiveFlows(), 0u);
}

TEST(FlowIncremental, UncontendedJoinAndCompletionTakeFastPath)
{
    sim::Simulator s;
    Topology topo(Topology::hgxParams(1));
    FlowNetwork netw(s, topo);
    double t1 = -1.0, t2 = -1.0;
    double bytes = 4.5e9;
    // Disjoint NVLink routes: neither join sees a contended link.
    netw.transfer(0, 1, Bytes(bytes), [&] { t1 = s.nowSeconds(); });
    netw.transfer(2, 3, Bytes(bytes), [&] { t2 = s.nowSeconds(); });
    s.run();
    EXPECT_GE(netw.numFastJoins(), 1u);
    EXPECT_GE(netw.numFastCompletions(), 1u);
    // Fast-pathed flows still run at the full link rate.
    double solo = topo.params().intraLatency.value() +
                  bytes / (topo.params().nvlinkBw.value() *
                           calib::kProtocolEfficiency);
    EXPECT_NEAR(t1, solo, solo * 0.02);
    EXPECT_NEAR(t2, solo, solo * 0.02);
}

TEST(FlowIncremental, ForceFullRecomputeDisablesFastPaths)
{
    sim::Simulator s;
    Topology topo(Topology::hgxParams(1));
    FlowNetwork netw(s, topo);
    netw.setForceFullRecompute(true);
    netw.transfer(0, 1, Bytes(1e8), [] {});
    netw.transfer(2, 3, Bytes(1e8), [] {});
    s.run();
    EXPECT_EQ(netw.numFastJoins(), 0u);
    EXPECT_EQ(netw.numFastCompletions(), 0u);
    EXPECT_GE(netw.numFullRecomputes(), 2u);
}

} // namespace
