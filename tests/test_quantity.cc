/**
 * @file
 * Tests for the strongly-typed quantity library: arithmetic and
 * literal semantics at runtime, plus trait-based negative checks that
 * prove the dimensionally unsound operations do NOT compile (without
 * actually writing ill-formed code, via std::is_invocable_v probes).
 */

#include <functional>
#include <type_traits>

#include <gtest/gtest.h>

#include "common/quantity.hh"

using namespace charllm;
using namespace charllm::unit_literals;

namespace {

// ---- compile-time layout guarantees ----------------------------------------
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Joules>);
static_assert(std::is_trivially_copyable_v<ClockRel>);
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Bytes) == sizeof(double));
static_assert(sizeof(CelsiusDelta) == sizeof(double));

// ---- negative checks: unsound ops must not be invocable --------------------
// Mixing dimensions in + or - is ill-formed.
static_assert(!std::is_invocable_v<std::plus<>, Watts, Celsius>);
static_assert(!std::is_invocable_v<std::plus<>, Watts, Joules>);
static_assert(!std::is_invocable_v<std::plus<>, Bytes, Seconds>);
static_assert(!std::is_invocable_v<std::minus<>, Seconds, Watts>);
static_assert(!std::is_invocable_v<std::plus<>, Flops, FlopsPerSec>);

// Raw doubles do not implicitly become quantities (explicit ctor), and
// quantities do not implicitly decay back to double.
static_assert(!std::is_convertible_v<double, Watts>);
static_assert(!std::is_convertible_v<double, Celsius>);
static_assert(!std::is_convertible_v<Watts, double>);
static_assert(std::is_constructible_v<Watts, double>);

// Quantity-vs-raw-double comparison is ill-formed; callers must either
// compare typed quantities or unwrap with .value().
static_assert(!std::is_invocable_v<std::less<>, Watts, double>);
static_assert(!std::is_invocable_v<std::greater<>, double, Celsius>);

// Cross-dimension comparison is ill-formed too.
static_assert(!std::is_invocable_v<std::less<>, Watts, Joules>);
static_assert(!std::is_invocable_v<std::equal_to<>, Bytes, Flops>);

// Affine temperature: no Celsius + Celsius, no scaling, no negation.
static_assert(!std::is_invocable_v<std::plus<>, Celsius, Celsius>);
static_assert(!std::is_invocable_v<std::multiplies<>, Celsius, double>);
static_assert(!std::is_invocable_v<std::negate<>, Celsius>);
// ...but the delta algebra exists.
static_assert(std::is_invocable_v<std::minus<>, Celsius, Celsius>);
static_assert(std::is_invocable_v<std::plus<>, Celsius, CelsiusDelta>);
static_assert(std::is_invocable_v<std::negate<>, CelsiusDelta>);

// Dividing unrelated dimensions is ill-formed (no Watts / Bytes).
static_assert(!std::is_invocable_v<std::divides<>, Watts, Bytes>);
static_assert(!std::is_invocable_v<std::divides<>, Seconds, Watts>);

// ---- positive checks: the sound algebra exists -----------------------------
static_assert(std::is_same_v<decltype(Watts(1.0) * Seconds(1.0)), Joules>);
static_assert(std::is_same_v<decltype(Joules(1.0) / Seconds(1.0)), Watts>);
static_assert(std::is_same_v<decltype(Joules(1.0) / Watts(1.0)), Seconds>);
static_assert(
    std::is_same_v<decltype(Bytes(1.0) / BytesPerSec(1.0)), Seconds>);
static_assert(
    std::is_same_v<decltype(BytesPerSec(1.0) * Seconds(1.0)), Bytes>);
static_assert(
    std::is_same_v<decltype(Flops(1.0) / FlopsPerSec(1.0)), Seconds>);
static_assert(std::is_same_v<decltype(FlopsPerSec(1.0) * ClockRel(0.5)),
                             FlopsPerSec>);
static_assert(std::is_same_v<decltype(Watts(1.0) / Watts(2.0)), double>);
static_assert(
    std::is_same_v<decltype(Celsius(40.0) - Celsius(30.0)), CelsiusDelta>);

TEST(Quantity, ConstructionAndValue)
{
    Watts p(350.0);
    EXPECT_DOUBLE_EQ(p.value(), 350.0);
    Seconds zero;
    EXPECT_DOUBLE_EQ(zero.value(), 0.0);
}

TEST(Quantity, LinearArithmetic)
{
    Watts a(100.0), b(250.0);
    EXPECT_DOUBLE_EQ((a + b).value(), 350.0);
    EXPECT_DOUBLE_EQ((b - a).value(), 150.0);
    EXPECT_DOUBLE_EQ((a * 3.0).value(), 300.0);
    EXPECT_DOUBLE_EQ((3.0 * a).value(), 300.0);
    EXPECT_DOUBLE_EQ((b / 2.0).value(), 125.0);
    EXPECT_DOUBLE_EQ((-a).value(), -100.0);

    Watts acc(0.0);
    acc += a;
    acc += b;
    acc -= Watts(50.0);
    acc *= 2.0;
    acc /= 4.0;
    EXPECT_DOUBLE_EQ(acc.value(), 150.0);
}

TEST(Quantity, SameDimensionRatioIsDouble)
{
    double r = Bytes(1e9) / Bytes(4e9);
    EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(Quantity, EnergyAlgebra)
{
    Joules e = 400.0_W * 2.5_s;
    EXPECT_DOUBLE_EQ(e.value(), 1000.0);
    EXPECT_DOUBLE_EQ((e / 2.5_s).value(), 400.0);
    EXPECT_DOUBLE_EQ((e / 400.0_W).value(), 2.5);
}

TEST(Quantity, TransferAlgebra)
{
    Seconds t = 8.0_GB / 2.0_GBps;
    EXPECT_DOUBLE_EQ(t.value(), 4.0);
    Bytes moved = 2.0_GBps * 4.0_s;
    EXPECT_DOUBLE_EQ(moved.value(), 8e9);
    BytesPerSec rate = 8.0_GB / 4.0_s;
    EXPECT_DOUBLE_EQ(rate.value(), 2e9);
}

TEST(Quantity, ComputeAlgebra)
{
    Seconds t = 2.0_PFLOP / 1.0_PFLOPS;
    EXPECT_DOUBLE_EQ(t.value(), 2.0);
    FlopsPerSec derated = 1.0_PFLOPS * ClockRel(0.5);
    EXPECT_DOUBLE_EQ(derated.value(), 5e14);
    EXPECT_DOUBLE_EQ((ClockRel(0.5) * 1.0_PFLOPS).value(), 5e14);
}

TEST(Quantity, AffineTemperature)
{
    Celsius t(70.0);
    CelsiusDelta d = Celsius(85.0) - t;
    EXPECT_DOUBLE_EQ(d.value(), 15.0);
    EXPECT_DOUBLE_EQ((t + d).value(), 85.0);
    EXPECT_DOUBLE_EQ((d + t).value(), 85.0);
    EXPECT_DOUBLE_EQ((t - 5.0_dC).value(), 65.0);
    // Deltas form a vector space even though points don't.
    EXPECT_DOUBLE_EQ((5.0_dC + 10.0_dC).value(), 15.0);
    EXPECT_DOUBLE_EQ((5.0_dC * 2.0).value(), 10.0);
}

TEST(Quantity, Comparisons)
{
    EXPECT_TRUE(Watts(100.0) < Watts(200.0));
    EXPECT_TRUE(Watts(200.0) >= Watts(200.0));
    EXPECT_TRUE(Celsius(85.0) > Celsius(30.0));
    EXPECT_TRUE(Bytes(1e9) == Bytes(1e9));
    EXPECT_TRUE(Seconds(1.0) != Seconds(2.0));
}

TEST(Quantity, Literals)
{
    EXPECT_DOUBLE_EQ((10.0_ms).value(), 0.01);
    EXPECT_DOUBLE_EQ((250.0_us).value(), 250e-6);
    EXPECT_DOUBLE_EQ((1.5_GB).value(), 1.5e9);
    EXPECT_DOUBLE_EQ((1.0_GiB).value(), 1073741824.0);
    EXPECT_DOUBLE_EQ((64.0_KiB).value(), 65536.0);
    EXPECT_DOUBLE_EQ((2.0_MB).value(), 2e6);
    // _Gbps is bits on the wire: 400 Gbps == 50 GB/s.
    EXPECT_DOUBLE_EQ((400.0_Gbps).value(), 50e9);
    EXPECT_DOUBLE_EQ((900.0_GBps).value(), 900e9);
    EXPECT_DOUBLE_EQ((1.0_TFLOP).value(), 1e12);
    EXPECT_DOUBLE_EQ((1.979_PFLOPS).value(), 1.979e15);
    EXPECT_DOUBLE_EQ((40.0_degC).value(), 40.0);
    EXPECT_DOUBLE_EQ((700.0_W).value(), 700.0);
    EXPECT_DOUBLE_EQ((1.0_J).value(), 1.0);
}

TEST(Quantity, ZeroOverheadRoundTrip)
{
    // The wrapper must not perturb the bit pattern of the double it
    // carries: what goes in through the ctor comes out of value().
    for (double v : {0.0, -0.0, 1e-300, 6.25e17, -3.75}) {
        EXPECT_EQ(Joules(v).value(), v);
    }
}

} // namespace
