/**
 * @file
 * Tests for obs::CriticalPathRecorder / analyze(): a hand-computed
 * golden on a 2-stage pipeline x 2-DP shaped record set, the
 * path-time identity and slack non-negativity on real engine runs,
 * byte-identity of simulation results with tracing on vs off,
 * double-run determinism of the report artifacts, folded-run
 * semantics, and straggler dominance under a node power fault.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "obs/critical_path.hh"

namespace {

using namespace charllm;

constexpr double kZero[obs::kNumThrottleSlots] = {0.0, 0.0, 0.0};

// ---- hand-computed golden --------------------------------------------------

/**
 * Two devices, one iteration [0, 10]:
 *
 *   dev0: A [0,3] ------> send [3,4] ----.
 *   dev1: B [0,2] (recv posted at 2) ----+-> C [4,7] -> allreduce
 *   dev0: D [3,6] (arrives at 6) --------------------/  [7,10]
 *
 * The collective launches at dev1's arrival (7); dev0 waited [6,7].
 * The receiver posted its recv at 2 but the flow only started at 3,
 * so [2,3] of upstream path time is a pipeline bubble charged to the
 * receiver. Expected partition of the 10 s wall:
 *
 *   [0,2]  compute dev0      [4,6]  compute dev1
 *   [2,3]  bubble  dev1      [6,7]  straggler wait dev1
 *   [3,4]  p2p wire (net)    [7,10] collective wire (net)
 */
struct GoldenRun
{
    obs::CriticalPathRecorder rec{2};
    int a, b, send, c, d, ar;

    GoldenRun()
    {
        rec.beginIteration(0, false, 0.0);
        a = rec.onComputeDone(0, 0.0, 3.0, "A", -1, kZero);
        b = rec.onComputeDone(1, 0.0, 2.0, "B", -1, kZero);
        send = rec.onP2PDone(0, 1, 3.0, 4.0, "send", rec.head(0),
                             /*recvPostedSec=*/2.0,
                             /*internode=*/false);
        rec.setHead(1, send); // receiver woken by the flow completion
        // C's power-cap estimate exceeds its 3 s span; analysis clips.
        const double slowC[obs::kNumThrottleSlots] = {0.5, 5.0, 0.0};
        c = rec.onComputeDone(1, 4.0, 7.0, "C", rec.head(1), slowC);
        // D is off the critical path: its throttle must not count.
        const double slowD[obs::kNumThrottleSlots] = {0.0, 9.0, 0.0};
        d = rec.onComputeDone(0, 3.0, 6.0, "D", a, slowD);
        ar = rec.onCollectiveDone({{0, 6.0}, {1, 7.0}}, {d, c}, 10.0,
                                  "allreduce", /*internode=*/false);
        rec.endIteration(10.0, false);
    }
};

TEST(CriticalPathGolden, SegmentsMatchHandComputation)
{
    GoldenRun g;
    auto report = g.rec.analyze();
    ASSERT_EQ(report.iterations.size(), 1u);
    const auto& iter = report.iterations[0];
    ASSERT_EQ(iter.segments.size(), 6u);

    using CC = obs::CauseClass;
    struct Want
    {
        double start, end;
        CC cause;
        int dev;
    };
    const Want want[6] = {
        {0.0, 2.0, CC::Compute, 0},
        {2.0, 3.0, CC::BubblePipeline, 1},
        {3.0, 4.0, CC::CommP2PScaleup, -1},
        {4.0, 6.0, CC::Compute, 1},
        {6.0, 7.0, CC::WaitStraggler, 1},
        {7.0, 10.0, CC::CommCollScaleup, -1},
    };
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_DOUBLE_EQ(iter.segments[i].startSec, want[i].start)
            << "segment " << i;
        EXPECT_DOUBLE_EQ(iter.segments[i].endSec, want[i].end)
            << "segment " << i;
        EXPECT_EQ(iter.segments[i].cause, want[i].cause)
            << "segment " << i;
        EXPECT_EQ(iter.segments[i].dev, want[i].dev) << "segment " << i;
    }

    auto cause = [&](CC c) {
        return iter.causeSeconds[static_cast<std::size_t>(c)];
    };
    EXPECT_DOUBLE_EQ(cause(CC::Compute), 4.0);
    EXPECT_DOUBLE_EQ(cause(CC::BubblePipeline), 1.0);
    EXPECT_DOUBLE_EQ(cause(CC::CommP2PScaleup), 1.0);
    EXPECT_DOUBLE_EQ(cause(CC::WaitStraggler), 1.0);
    EXPECT_DOUBLE_EQ(cause(CC::CommCollScaleup), 3.0);
    EXPECT_DOUBLE_EQ(cause(CC::Startup), 0.0);

    EXPECT_DOUBLE_EQ(iter.deviceSeconds.at(0), 2.0);
    EXPECT_DOUBLE_EQ(iter.deviceSeconds.at(1), 4.0);
    EXPECT_DOUBLE_EQ(iter.deviceSeconds.at(-1), 4.0);
    EXPECT_EQ(report.dominantDevice(), 1);
    EXPECT_DOUBLE_EQ(report.deviceSeconds(1), 4.0);
}

TEST(CriticalPathGolden, ThrottleAnnotationClipsToKernelSpan)
{
    GoldenRun g;
    auto report = g.rec.analyze();
    const auto& iter = report.iterations[0];
    using TS = obs::ThrottleSlot;
    EXPECT_DOUBLE_EQ(
        iter.throttleSeconds[static_cast<std::size_t>(TS::Thermal)],
        0.5);
    // C claimed 5 s of power-cap elongation over a 3 s span: clipped.
    EXPECT_DOUBLE_EQ(
        iter.throttleSeconds[static_cast<std::size_t>(TS::PowerCap)],
        3.0);
    EXPECT_DOUBLE_EQ(iter.deviceThrottleSeconds.at(1)[static_cast<
                         std::size_t>(TS::Thermal)],
                     0.5);
    EXPECT_DOUBLE_EQ(iter.deviceThrottleSeconds.at(1)[static_cast<
                         std::size_t>(TS::PowerCap)],
                     3.0);
    // D's 9 s power-cap claim is off-path: excluded entirely.
    EXPECT_EQ(iter.deviceThrottleSeconds.count(0), 0u);
    // The annotation is cross-cutting: the time-axis identity is
    // untouched by it.
    double sum = 0.0;
    for (double s : iter.causeSeconds)
        sum += s;
    EXPECT_NEAR(sum, iter.wallSeconds(), 1e-12);
}

TEST(CriticalPathGolden, SlackIsCpmBackwardPass)
{
    GoldenRun g;
    auto report = g.rec.analyze();
    // Hand CPM: on-path records (A, send, C, allreduce) have zero
    // slack; D can slip 1 s into the straggler window; B is a dead
    // end and can slip to the iteration close (10 - 2 = 8 s).
    EXPECT_EQ(report.slack.count(), 6u);
    EXPECT_DOUBLE_EQ(report.slack.min(), 0.0);
    EXPECT_DOUBLE_EQ(report.slack.max(), 8.0);
    EXPECT_DOUBLE_EQ(report.slack.sum(), 9.0);
}

TEST(CriticalPathGolden, ReportSerializationIsStable)
{
    GoldenRun g1, g2;
    auto r1 = g1.rec.analyze();
    auto r2 = g2.rec.analyze();
    EXPECT_EQ(r1.toJson(), r2.toJson());
    EXPECT_EQ(r1.toCsv().str(), r2.toCsv().str());
    // The JSON carries the rundiff-facing mean tree.
    EXPECT_NE(r1.toJson().find("\"wait.straggler\":1"),
              std::string::npos);
    EXPECT_NE(r1.toCsv().str().find("wait.straggler"),
              std::string::npos);
}

TEST(CriticalPath, EmptyIterationIsAllStartup)
{
    obs::CriticalPathRecorder rec(2);
    rec.beginIteration(0, false, 1.0);
    rec.endIteration(3.0, false);
    auto report = rec.analyze();
    ASSERT_EQ(report.iterations.size(), 1u);
    const auto& iter = report.iterations[0];
    ASSERT_EQ(iter.segments.size(), 1u);
    EXPECT_EQ(iter.segments[0].cause, obs::CauseClass::Startup);
    EXPECT_DOUBLE_EQ(
        iter.causeSeconds[static_cast<std::size_t>(
            obs::CauseClass::Startup)],
        2.0);
}

TEST(CriticalPath, AbortedIterationsAreSkipped)
{
    obs::CriticalPathRecorder rec(2);
    rec.beginIteration(0, false, 0.0);
    rec.onComputeDone(0, 0.0, 1.0, "A", -1, kZero);
    rec.endIteration(0.5, true); // aborted mid-flight
    auto report = rec.analyze();
    ASSERT_EQ(report.iterations.size(), 1u);
    EXPECT_TRUE(report.iterations[0].aborted);
    EXPECT_TRUE(report.iterations[0].segments.empty());
    EXPECT_EQ(report.measuredIterations, 0);
}

// ---- engine integration ----------------------------------------------------

model::TransformerConfig
smallModel()
{
    model::TransformerConfig c;
    c.name = "Small-3B";
    c.numLayers = 16;
    c.hiddenSize = 2560;
    c.numHeads = 20;
    c.numQueryGroups = 20;
    c.ffnHiddenSize = 4 * 2560;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

core::ExperimentConfig
smallConfig(int world, int tp, int pp, int nodes = 1)
{
    core::ExperimentConfig cfg;
    cfg.cluster = core::h200Cluster(nodes);
    cfg.model = smallModel();
    cfg.par = parallel::ParallelConfig::forWorld(world, tp, pp);
    cfg.train.globalBatchSize = 16;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 2;
    cfg.enableCriticalPath = true;
    return cfg;
}

void
checkIdentity(const obs::CriticalPathReport& report)
{
    ASSERT_FALSE(report.iterations.empty());
    for (const auto& iter : report.iterations) {
        if (iter.aborted)
            continue;
        double wall = iter.wallSeconds();
        double tol = 1e-9 * std::max(1.0, wall);
        ASSERT_FALSE(iter.segments.empty());
        // Segments tile [start, end] exactly: contiguous, in order.
        EXPECT_NEAR(iter.segments.front().startSec, iter.startSec, tol);
        EXPECT_NEAR(iter.segments.back().endSec, iter.endSec, tol);
        double covered = 0.0;
        for (std::size_t i = 0; i < iter.segments.size(); ++i) {
            const auto& seg = iter.segments[i];
            EXPECT_LE(seg.startSec, seg.endSec);
            covered += seg.endSec - seg.startSec;
            if (i > 0) {
                EXPECT_NEAR(seg.startSec,
                            iter.segments[i - 1].endSec, tol);
            }
        }
        EXPECT_NEAR(covered, wall, tol)
            << "identity violated on iteration " << iter.index;
        double causeSum = 0.0;
        for (double s : iter.causeSeconds)
            causeSum += s;
        EXPECT_NEAR(causeSum, wall, tol);
    }
    EXPECT_GE(report.slack.min(), 0.0);
}

TEST(CriticalPathEngine, TwoStageTwoDpProgramIdentity)
{
    // A real 2-stage pipeline x 2-DP program (world 8 = TP2 x PP2 x
    // DP2): the engine must record P2P sends, DP collectives, and
    // compute into a partition of every iteration's wall time.
    auto r = core::Experiment::run(smallConfig(8, 2, 2));
    ASSERT_TRUE(r.feasible);
    ASSERT_NE(r.critPath, nullptr);
    const auto& cp = *r.critPath;
    EXPECT_EQ(cp.iterations.size(), 3u); // 1 warmup + 2 measured
    EXPECT_EQ(cp.measuredIterations, 2);
    checkIdentity(cp);
    using CC = obs::CauseClass;
    auto mean = [&](CC c) {
        return cp.meanCauseSeconds[static_cast<std::size_t>(c)];
    };
    EXPECT_GT(mean(CC::Compute), 0.0);
    // A 2-deep pipeline with 2-way DP exposes some non-compute path
    // time (wire, bubble, or straggler wait).
    EXPECT_GT(mean(CC::CommCollScaleup) + mean(CC::CommCollInternode) +
                  mean(CC::CommP2PScaleup) + mean(CC::CommP2PInternode) +
                  mean(CC::WaitStraggler) + mean(CC::BubblePipeline),
              0.0);
    EXPECT_NEAR(mean(CC::Compute) + mean(CC::CommCollScaleup) +
                    mean(CC::CommCollInternode) +
                    mean(CC::CommP2PScaleup) +
                    mean(CC::CommP2PInternode) +
                    mean(CC::WaitStraggler) +
                    mean(CC::BubblePipeline) + mean(CC::Startup),
                cp.meanWallSeconds,
                1e-9 * std::max(1.0, cp.meanWallSeconds));
}

TEST(CriticalPathEngine, IdentityHoldsAcrossShapes)
{
    for (auto [tp, pp] : {std::pair{2, 4}, {8, 1}, {2, 1}}) {
        auto r = core::Experiment::run(smallConfig(8, tp, pp));
        ASSERT_TRUE(r.feasible) << "TP" << tp << "-PP" << pp;
        ASSERT_NE(r.critPath, nullptr);
        checkIdentity(*r.critPath);
    }
}

TEST(CriticalPathEngine, EnablingTracingIsByteInvisible)
{
    auto cfg = smallConfig(8, 2, 4);
    cfg.enableCriticalPath = false;
    auto off = core::Experiment::run(cfg);
    cfg.enableCriticalPath = true;
    auto on = core::Experiment::run(cfg);
    ASSERT_TRUE(off.feasible);
    ASSERT_TRUE(on.feasible);
    EXPECT_EQ(off.critPath, nullptr);
    ASSERT_NE(on.critPath, nullptr);
    // The recorder is passive: every simulation output is
    // byte-identical, not just numerically close.
    EXPECT_EQ(core::toJson(off), core::toJson(on));
    EXPECT_EQ(core::summaryCsv({off}).str(),
              core::summaryCsv({on}).str());
    ASSERT_EQ(off.iterationSeconds.size(), on.iterationSeconds.size());
    for (std::size_t i = 0; i < off.iterationSeconds.size(); ++i)
        EXPECT_DOUBLE_EQ(off.iterationSeconds[i],
                         on.iterationSeconds[i]);
    EXPECT_DOUBLE_EQ(off.totalEnergyJ, on.totalEnergyJ);
}

TEST(CriticalPathEngine, DoubleRunArtifactsAreByteIdentical)
{
    auto cfg = smallConfig(8, 2, 4);
    auto r1 = core::Experiment::run(cfg);
    auto r2 = core::Experiment::run(cfg);
    ASSERT_NE(r1.critPath, nullptr);
    ASSERT_NE(r2.critPath, nullptr);
    EXPECT_EQ(r1.critPath->toJson(), r2.critPath->toJson());
    EXPECT_EQ(r1.critPath->toCsv().str(), r2.critPath->toCsv().str());
}

TEST(CriticalPathEngine, FoldedRunCarriesMultiplicity)
{
    // Rank-symmetry collapse: the representative's path stands for
    // every DP replica; the report says so instead of pretending the
    // folded world ran.
    const int world = 32, tp = 2, pp = 2;
    core::ExperimentConfig cfg;
    cfg.cluster =
        core::oneGpuPerNodeCluster(core::h200Cluster(1), world);
    cfg.model = smallModel();
    cfg.par = parallel::ParallelConfig::forWorld(world, tp, pp);
    cfg.train.globalBatchSize = world / (tp * pp);
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 2;
    cfg.checkMemory = false;
    cfg.symmetryCollapse = true;
    cfg.enableCriticalPath = true;
    auto r = core::Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    ASSERT_TRUE(r.symmetry.collapsed) << r.symmetry.reason;
    ASSERT_NE(r.critPath, nullptr);
    EXPECT_TRUE(r.critPath->folded);
    EXPECT_EQ(r.critPath->multiplicity, world / (tp * pp));
    checkIdentity(*r.critPath);
    EXPECT_NE(r.critPath->toJson().find("\"folded\":true"),
              std::string::npos);
}

TEST(CriticalPathEngine, StragglerNodeDominatesExtractedPath)
{
    // Cap node 1's power delivery hard (the paper's Sec. 1 incident):
    // its GPUs run slow, so the critical path must run through them —
    // slowed compute plus straggler wait — and the power_cap throttle
    // annotation must land on the capped devices.
    auto cfg = smallConfig(16, 2, 2, /*nodes=*/2);
    cfg.nodePowerCaps = {{1, 150.0}};
    auto r = core::Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    ASSERT_NE(r.critPath, nullptr);
    const auto& cp = *r.critPath;
    checkIdentity(cp);
    double faulty = 0.0, healthy = 0.0;
    for (int g = 0; g < 16; ++g)
        (g / 8 == 1 ? faulty : healthy) += cp.deviceSeconds(g);
    EXPECT_GT(faulty, healthy)
        << "capped node carries " << faulty << "s of path vs "
        << healthy << "s healthy";
    constexpr auto kPowerCap =
        static_cast<std::size_t>(obs::ThrottleSlot::PowerCap);
    double faultyThrottle = 0.0, healthyThrottle = 0.0;
    for (const auto& [dev, slots] : cp.meanDeviceThrottleSeconds)
        (dev / 8 == 1 ? faultyThrottle : healthyThrottle) +=
            slots[kPowerCap];
    EXPECT_GT(faultyThrottle, 0.0);
    EXPECT_GT(faultyThrottle, healthyThrottle);
    EXPECT_GT(cp.meanThrottleSeconds[kPowerCap], 0.0);
}

} // namespace
