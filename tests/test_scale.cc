/**
 * @file
 * Tests for the datacenter-scale projector (paper Sec. 7.1
 * methodology) — DP scaling arithmetic, bandwidth sensitivity, and
 * strong-scaling behaviour.
 */

#include <gtest/gtest.h>

#include "scale/projector.hh"

namespace {

using namespace charllm::scale;

ProjectionInput
baseInput()
{
    ProjectionInput in;
    in.computeSeconds = 20.0;
    in.intraCommSeconds = 3.0;
    in.interCommSeconds = 2.0;
    in.gradBytesPerGpu = 10e9;
    in.baseGpus = 32;
    in.gpusPerNode = 8;
    in.tokensPerIteration = 262144.0;
    in.nodeBandwidth = 12.5e9;
    in.messageLatency = 18e-6;
    return in;
}

TEST(Projector, Dp1HasNoAllReduce)
{
    Projector p(baseInput());
    auto point = p.project(1);
    EXPECT_DOUBLE_EQ(point.allReduceSeconds, 0.0);
    EXPECT_NEAR(point.iterationSeconds, 25.0, 1e-9);
    EXPECT_DOUBLE_EQ(point.strongScalingEfficiency, 1.0);
    EXPECT_EQ(point.totalGpus, 32);
}

TEST(Projector, ComputeDividesByDp)
{
    Projector p(baseInput());
    auto point = p.project(8);
    EXPECT_NEAR(point.computeSeconds, 20.0 / 8.0, 1e-12);
    EXPECT_EQ(point.totalGpus, 256);
}

TEST(Projector, AllReduceGrowsWithDp)
{
    Projector p(baseInput());
    EXPECT_LT(p.project(2).allReduceSeconds,
              p.project(64).allReduceSeconds);
}

TEST(Projector, StrongScalingDegradesAtLargeDp)
{
    Projector p(baseInput());
    auto small = p.project(2);
    auto large = p.project(256); // 8K GPUs
    EXPECT_GT(small.strongScalingEfficiency,
              large.strongScalingEfficiency);
    EXPECT_LT(large.strongScalingEfficiency, 0.5);
}

TEST(Projector, StrongScalingCollapseMatchesPaperScale)
{
    // Paper: at 100 Gbps, strong scaling drops by up to ~9.7x vs
    // ideal at 8K GPUs; at 800 Gbps it recovers by up to ~4.2x.
    Projector p(baseInput());
    auto at100 = p.project(256, 1.0);
    double collapse = 1.0 / at100.strongScalingEfficiency;
    EXPECT_GT(collapse, 4.0);
    EXPECT_LT(collapse, 25.0);
    auto at800 = p.project(256, 8.0);
    double recovery = at800.strongScalingEfficiency /
                      at100.strongScalingEfficiency;
    EXPECT_GT(recovery, 2.0);
    EXPECT_LT(recovery, 9.0);
}

TEST(Projector, BandwidthMultiplierShrinksInterComm)
{
    Projector p(baseInput());
    auto slow = p.project(4, 1.0);
    auto fast = p.project(4, 8.0);
    EXPECT_LT(fast.iterationSeconds, slow.iterationSeconds);
    EXPECT_LT(fast.allReduceSeconds, slow.allReduceSeconds);
}

TEST(Projector, PerGpuThroughputDecreasesWithScale)
{
    Projector p(baseInput());
    EXPECT_GT(p.project(1).perGpuTokensPerSecond,
              p.project(64).perGpuTokensPerSecond);
}

TEST(Projector, TotalThroughputStillImprovesModerately)
{
    Projector p(baseInput());
    EXPECT_GT(p.project(8).tokensPerSecond,
              p.project(1).tokensPerSecond);
}

TEST(Projector, SweepPreservesOrder)
{
    Projector p(baseInput());
    auto points = p.sweep({1, 4, 16, 64, 256});
    ASSERT_EQ(points.size(), 5u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].totalGpus, points[i - 1].totalGpus);
        EXPECT_LE(points[i].strongScalingEfficiency,
                  points[i - 1].strongScalingEfficiency + 1e-9);
    }
}

} // namespace
