/**
 * @file
 * Tests for the datacenter-scale projector (paper Sec. 7.1
 * methodology) — DP scaling arithmetic, bandwidth sensitivity,
 * strong-scaling behaviour (never above ideal at any bandwidth
 * multiplier), and input validation (no NaN/Inf escapes).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scale/projector.hh"

namespace {

using namespace charllm;
using namespace charllm::scale;

ProjectionInput
baseInput()
{
    ProjectionInput in;
    in.computeSeconds = Seconds(20.0);
    in.intraCommSeconds = Seconds(3.0);
    in.interCommSeconds = Seconds(2.0);
    in.gradBytesPerGpu = Bytes(10e9);
    in.baseGpus = 32;
    in.gpusPerNode = 8;
    in.tokensPerIteration = 262144.0;
    in.nodeBandwidth = BytesPerSec(12.5e9);
    in.messageLatency = Seconds(18e-6);
    return in;
}

TEST(Projector, Dp1HasNoAllReduce)
{
    Projector p(baseInput());
    auto point = p.project(1);
    EXPECT_DOUBLE_EQ(point.allReduceSeconds.value(), 0.0);
    EXPECT_NEAR(point.iterationSeconds.value(), 25.0, 1e-9);
    EXPECT_DOUBLE_EQ(point.strongScalingEfficiency, 1.0);
    EXPECT_EQ(point.totalGpus, 32);
}

TEST(Projector, ComputeDividesByDp)
{
    Projector p(baseInput());
    auto point = p.project(8);
    EXPECT_NEAR(point.computeSeconds.value(), 20.0 / 8.0, 1e-12);
    EXPECT_EQ(point.totalGpus, 256);
}

TEST(Projector, AllReduceGrowsWithDp)
{
    Projector p(baseInput());
    EXPECT_LT(p.project(2).allReduceSeconds.value(),
              p.project(64).allReduceSeconds.value());
}

TEST(Projector, StrongScalingDegradesAtLargeDp)
{
    Projector p(baseInput());
    auto small = p.project(2);
    auto large = p.project(256); // 8K GPUs
    EXPECT_GT(small.strongScalingEfficiency,
              large.strongScalingEfficiency);
    EXPECT_LT(large.strongScalingEfficiency, 0.5);
}

TEST(Projector, StrongScalingCollapseMatchesPaperScale)
{
    // Paper: at 100 Gbps, strong scaling drops by up to ~9.7x vs
    // ideal at 8K GPUs; at 800 Gbps it recovers by up to ~4.2x.
    Projector p(baseInput());
    auto at100 = p.project(256, 1.0);
    double collapse = 1.0 / at100.strongScalingEfficiency;
    EXPECT_GT(collapse, 4.0);
    EXPECT_LT(collapse, 25.0);
    auto at800 = p.project(256, 8.0);
    double recovery = at800.strongScalingEfficiency /
                      at100.strongScalingEfficiency;
    EXPECT_GT(recovery, 2.0);
    EXPECT_LT(recovery, 9.0);
}

TEST(Projector, EfficiencyNeverExceedsIdeal)
{
    // Regression: the ideal time used to come from the unscaled
    // baseline, so any bandwidth_multiplier > 1 reported super-ideal
    // "efficiency" above 1.0. The ideal must see the same multiplier
    // as the projected point.
    Projector p(baseInput());
    for (double bwm : {1.0, 8.0}) {
        for (int dp : {1, 2, 8, 64, 256}) {
            auto point = p.project(dp, bwm);
            EXPECT_LE(point.strongScalingEfficiency, 1.0)
                << "dp=" << dp << " bwm=" << bwm;
            EXPECT_GT(point.strongScalingEfficiency, 0.0)
                << "dp=" << dp << " bwm=" << bwm;
        }
        // dp=1 against its own bandwidth-scaled baseline is exact.
        EXPECT_DOUBLE_EQ(p.project(1, bwm).strongScalingEfficiency,
                         1.0);
    }
}

TEST(Projector, BandwidthMultiplierShrinksInterComm)
{
    Projector p(baseInput());
    auto slow = p.project(4, 1.0);
    auto fast = p.project(4, 8.0);
    EXPECT_LT(fast.iterationSeconds.value(),
              slow.iterationSeconds.value());
    EXPECT_LT(fast.allReduceSeconds.value(),
              slow.allReduceSeconds.value());
}

TEST(Projector, PerGpuThroughputDecreasesWithScale)
{
    Projector p(baseInput());
    EXPECT_GT(p.project(1).perGpuTokensPerSecond,
              p.project(64).perGpuTokensPerSecond);
}

TEST(Projector, TotalThroughputStillImprovesModerately)
{
    Projector p(baseInput());
    EXPECT_GT(p.project(8).tokensPerSecond,
              p.project(1).tokensPerSecond);
}

TEST(Projector, SweepPreservesOrder)
{
    Projector p(baseInput());
    auto points = p.sweep({1, 4, 16, 64, 256});
    ASSERT_EQ(points.size(), 5u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].totalGpus, points[i - 1].totalGpus);
        EXPECT_LE(points[i].strongScalingEfficiency,
                  points[i - 1].strongScalingEfficiency + 1e-9);
    }
}

TEST(Projector, OutputsAreAlwaysFinite)
{
    Projector p(baseInput());
    for (int dp : {1, 2, 256}) {
        auto point = p.project(dp, 8.0);
        EXPECT_TRUE(std::isfinite(point.iterationSeconds.value()));
        EXPECT_TRUE(std::isfinite(point.tokensPerSecond));
        EXPECT_TRUE(std::isfinite(point.perGpuTokensPerSecond));
        EXPECT_TRUE(std::isfinite(point.strongScalingEfficiency));
    }
}

// ---- input validation (used to propagate NaN/Inf into reports) ------

TEST(ProjectorDeath, RejectsAllZeroTimes)
{
    auto in = baseInput();
    in.computeSeconds = Seconds(0.0);
    in.intraCommSeconds = Seconds(0.0);
    in.interCommSeconds = Seconds(0.0);
    EXPECT_DEATH(Projector p(in), "all-zero baseline");
}

TEST(ProjectorDeath, RejectsNegativeTimes)
{
    auto in = baseInput();
    in.interCommSeconds = Seconds(-1.0);
    EXPECT_DEATH(Projector p(in), "negative baseline time");
}

TEST(ProjectorDeath, RejectsNonFiniteInput)
{
    auto in = baseInput();
    in.computeSeconds = Seconds(std::nan(""));
    EXPECT_DEATH(Projector p(in), "non-finite projection input");
    in = baseInput();
    in.gradBytesPerGpu = Bytes(HUGE_VAL);
    EXPECT_DEATH(Projector p(in), "non-finite projection input");
}

TEST(ProjectorDeath, RejectsBadCountsAndRates)
{
    auto in = baseInput();
    in.baseGpus = 0;
    EXPECT_DEATH(Projector p(in), "invalid GPU counts");
    in = baseInput();
    in.tokensPerIteration = 0.0;
    EXPECT_DEATH(Projector p(in), "tokens per iteration");
    in = baseInput();
    in.nodeBandwidth = BytesPerSec(0.0);
    EXPECT_DEATH(Projector p(in), "node bandwidth");
    in = baseInput();
    in.messageLatency = Seconds(-1e-6);
    EXPECT_DEATH(Projector p(in), "negative message latency");
}

TEST(ProjectorDeath, RejectsBadProjectionPoint)
{
    Projector p(baseInput());
    EXPECT_DEATH(p.project(0), "invalid projection point");
    EXPECT_DEATH(p.project(2, 0.0), "invalid projection point");
    EXPECT_DEATH(p.project(2, std::nan("")),
                 "invalid projection point");
}

} // namespace
