/**
 * @file
 * Tests for the model analytics: parameter counts must match the
 * published sizes (Table 1), and FLOP/memory formulas must scale
 * correctly.
 */

#include <gtest/gtest.h>

#include "model/analytics.hh"
#include "model/transformer_config.hh"

namespace {

using namespace charllm;
using namespace charllm::model;

double
paramsB(const TransformerConfig& cfg)
{
    return ModelAnalytics(cfg).totalParams() / 1e9;
}

// ---- Table 1 parameter counts ----------------------------------------------

TEST(ModelZoo, Gpt3_175B)
{
    EXPECT_NEAR(paramsB(gpt3_175b()), 175.0, 5.0);
}

TEST(ModelZoo, Gpt3_30B)
{
    EXPECT_NEAR(paramsB(gpt3_30b()), 30.0, 2.0);
}

TEST(ModelZoo, Gpt3_13B)
{
    EXPECT_NEAR(paramsB(gpt3_13b()), 13.0, 1.0);
}

TEST(ModelZoo, Llama3_70B)
{
    EXPECT_NEAR(paramsB(llama3_70b()), 70.0, 3.0);
}

TEST(ModelZoo, Llama3_30B)
{
    EXPECT_NEAR(paramsB(llama3_30b()), 30.0, 2.0);
}

TEST(ModelZoo, Mixtral_8x22B)
{
    EXPECT_NEAR(paramsB(mixtral_8x22b()), 141.0, 5.0);
}

TEST(ModelZoo, Mixtral_8x7B)
{
    EXPECT_NEAR(paramsB(mixtral_8x7b()), 46.7, 2.0);
}

TEST(ModelZoo, Mixtral_4x7B)
{
    double full = paramsB(mixtral_8x7b());
    double reduced = paramsB(mixtral_4x7b());
    EXPECT_LT(reduced, full * 0.65);
    EXPECT_GT(reduced, full * 0.4);
}

TEST(ModelZoo, Table1SetComplete)
{
    auto models = table1Models();
    EXPECT_EQ(models.size(), 6u);
}

// ---- structural properties --------------------------------------------------

TEST(Analytics, GqaShrinksAttentionParams)
{
    TransformerConfig mha = llama3_70b();
    mha.numQueryGroups = mha.numHeads;
    EXPECT_GT(ModelAnalytics(mha).attnParamsPerLayer(),
              ModelAnalytics(llama3_70b()).attnParamsPerLayer());
}

TEST(Analytics, MoeExecutesOnlyTopKExperts)
{
    auto cfg = mixtral_8x7b();
    ModelAnalytics a(cfg);
    // Executed MLP flops cover topK experts, not all 8.
    double per_expert_flops = 2.0 * a.mlpParamsPerExpert();
    EXPECT_NEAR(a.mlpFwdFlopsPerToken(),
                cfg.topK * per_expert_flops +
                    2.0 * a.routerParamsPerLayer(),
                1.0);
    // But all experts' parameters exist.
    EXPECT_GT(a.paramsPerLayer(),
              cfg.numExperts * a.mlpParamsPerExpert());
}

TEST(Analytics, FwdFlopsApproxTwoParamsPerToken)
{
    // Dense models: fwd flops/token ~ 2 * params (plus attention
    // score terms and head).
    auto cfg = gpt3_175b();
    ModelAnalytics a(cfg);
    double ratio = a.fwdFlopsPerToken() / a.totalParams();
    EXPECT_GT(ratio, 1.9);
    EXPECT_LT(ratio, 2.6);
}

TEST(Analytics, RecomputeStashFarSmallerThanFull)
{
    ModelAnalytics a(gpt3_175b());
    EXPECT_LT(a.checkpointBytesPerTokenPerLayer() * 10.0,
              a.activationBytesPerTokenPerLayer());
}

TEST(Analytics, LoraTrainableParamsTiny)
{
    auto cfg = withLora(llama3_70b(), 16);
    ModelAnalytics a(cfg);
    EXPECT_TRUE(cfg.isLora());
    EXPECT_LT(a.trainableParams(), 0.01 * a.totalParams());
    // Full training: everything trainable.
    ModelAnalytics full{llama3_70b()};
    EXPECT_DOUBLE_EQ(full.trainableParams(), full.totalParams());
}

TEST(Analytics, HeadFlopsScaleWithVocab)
{
    auto small = gpt3_175b();
    auto big = gpt3_175b();
    big.vocabSize *= 2;
    EXPECT_NEAR(ModelAnalytics(big).headFlopsPerToken(),
                2.0 * ModelAnalytics(small).headFlopsPerToken(), 1.0);
}

} // namespace
