/**
 * @file
 * Tests for the pluggable fidelity backends (sim::Backend): backend
 * name parsing, DES determinism (byte-identical repeated runs),
 * analytical-vs-DES cross-validation on a small preset, the memory
 * screen on both backends, and loud rejection of features the
 * analytical estimator cannot model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bench_util.hh"
#include "core/analytical_backend.hh"
#include "core/cluster.hh"
#include "core/des_backend.hh"
#include "core/experiment.hh"
#include "faults/scenarios.hh"
#include "hw/calibration.hh"
#include "sim/backend.hh"
#include "sim/backend_kind.hh"

namespace {

using namespace charllm;
using namespace charllm::core;

model::TransformerConfig
smallModel()
{
    model::TransformerConfig c;
    c.name = "Small-3B";
    c.numLayers = 16;
    c.hiddenSize = 2560;
    c.numHeads = 20;
    c.numQueryGroups = 20;
    c.ffnHiddenSize = 4 * 2560;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

ExperimentConfig
smallConfig(int tp, int pp, sim::BackendKind backend)
{
    ExperimentConfig cfg;
    cfg.cluster = h200Cluster(1);
    cfg.model = smallModel();
    cfg.par = parallel::ParallelConfig::forWorld(8, tp, pp);
    cfg.train.globalBatchSize = 16;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 2;
    cfg.backend = backend;
    return cfg;
}

double
relErr(double a, double b)
{
    return std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
}

// ---- backend kind parsing ----------------------------------------------------

TEST(BackendKind, ParsesKnownNames)
{
    sim::BackendKind kind = sim::BackendKind::Analytical;
    EXPECT_TRUE(sim::parseBackendKind("des", &kind));
    EXPECT_EQ(kind, sim::BackendKind::Des);
    EXPECT_TRUE(sim::parseBackendKind("analytical", &kind));
    EXPECT_EQ(kind, sim::BackendKind::Analytical);
}

TEST(BackendKind, RejectsUnknownNames)
{
    sim::BackendKind kind = sim::BackendKind::Des;
    EXPECT_FALSE(sim::parseBackendKind("", &kind));
    EXPECT_FALSE(sim::parseBackendKind("DES", &kind));
    EXPECT_FALSE(sim::parseBackendKind("roofline", &kind));
    // A failed parse leaves the output untouched.
    EXPECT_EQ(kind, sim::BackendKind::Des);
}

TEST(BackendKind, NamesRoundTrip)
{
    EXPECT_STREQ(sim::backendKindName(sim::BackendKind::Des), "des");
    EXPECT_STREQ(sim::backendKindName(sim::BackendKind::Analytical),
                 "analytical");
    sim::BackendKind kind = sim::BackendKind::Des;
    ASSERT_TRUE(sim::parseBackendKind(
        sim::backendKindName(sim::BackendKind::Analytical), &kind));
    EXPECT_EQ(kind, sim::BackendKind::Analytical);
}

TEST(BackendKind, FactoryReportsNames)
{
    EXPECT_STREQ(sim::makeBackend(sim::BackendKind::Des)->name(),
                 "des");
    EXPECT_STREQ(
        sim::makeBackend(sim::BackendKind::Analytical)->name(),
        "analytical");
}

// ---- DES backend: the reference ----------------------------------------------

TEST(DesBackend, RepeatedRunsAreByteIdentical)
{
    auto cfg = smallConfig(2, 4, sim::BackendKind::Des);
    auto a = Experiment::run(cfg);
    auto b = Experiment::run(cfg);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    // Exact double equality: the DES path must be deterministic.
    EXPECT_EQ(a.avgIterationSeconds, b.avgIterationSeconds);
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.peakTempC, b.peakTempC);
    ASSERT_EQ(a.iterationSeconds.size(), b.iterationSeconds.size());
    for (std::size_t i = 0; i < a.iterationSeconds.size(); ++i)
        EXPECT_EQ(a.iterationSeconds[i], b.iterationSeconds[i]);
    ASSERT_EQ(a.gpus.size(), b.gpus.size());
    for (std::size_t i = 0; i < a.gpus.size(); ++i) {
        EXPECT_EQ(a.gpus[i].energyJ, b.gpus[i].energyJ);
        EXPECT_EQ(a.gpus[i].avgPowerW, b.gpus[i].avgPowerW);
        EXPECT_EQ(a.gpus[i].avgTempC, b.gpus[i].avgTempC);
    }
}

TEST(DesBackend, LifecycleIsEnforced)
{
    DesBackend backend;
    EXPECT_DEATH(backend.results(), "before execute");
}

// ---- analytical backend ------------------------------------------------------

TEST(AnalyticalBackend, MatchesDesWithinTolerance)
{
    auto des = Experiment::run(
        smallConfig(2, 4, sim::BackendKind::Des));
    auto ana = Experiment::run(
        smallConfig(2, 4, sim::BackendKind::Analytical));
    ASSERT_TRUE(des.feasible);
    ASSERT_TRUE(ana.feasible);
    // The analytical estimator approximates transient contention; the
    // tight per-figure tolerances live in bench_backend_xval — here we
    // assert the estimate is in the right ballpark.
    EXPECT_LT(relErr(ana.avgIterationSeconds,
                     des.avgIterationSeconds), 0.35);
    EXPECT_LT(relErr(ana.tokensPerSecond, des.tokensPerSecond), 0.35);
    EXPECT_LT(relErr(ana.totalEnergyJ, des.totalEnergyJ), 0.35);
    EXPECT_LT(relErr(ana.avgPowerW, des.avgPowerW), 0.30);
    // No avgTempC bound here: the analytical backend reports the
    // steady-state temperature, while a short DES run never leaves the
    // thermal transient. It must still sit between ambient and a
    // plausible silicon ceiling.
    EXPECT_GT(ana.avgTempC, hw::calib::kRoomTempC);
    EXPECT_LT(ana.peakTempC, 100.0);
}

TEST(AnalyticalBackend, MetricsAreConsistentAndFinite)
{
    auto r = Experiment::run(
        smallConfig(2, 4, sim::BackendKind::Analytical));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.iterationSeconds.size(), 2u);
    EXPECT_GT(r.avgIterationSeconds, 0.0);
    EXPECT_NEAR(r.tokensPerSecond,
                r.tokensPerIteration / r.avgIterationSeconds, 1e-6);
    EXPECT_NEAR(r.tokensPerJoule * r.energyPerTokenJ, 1.0, 1e-9);
    EXPECT_EQ(r.gpus.size(), 8u);
    EXPECT_GE(r.peakPowerW, r.avgPowerW);
    double sum = 0.0;
    for (const auto& g : r.gpus) {
        EXPECT_TRUE(std::isfinite(g.energyJ));
        EXPECT_TRUE(std::isfinite(g.avgPowerW));
        EXPECT_TRUE(std::isfinite(g.avgTempC));
        EXPECT_GT(g.avgPowerW, 0.0);
        sum += g.energyJ;
    }
    EXPECT_NEAR(sum, r.totalEnergyJ, 1e-6 * sum);
    // No event queue ran: transient-only outputs are empty.
    EXPECT_TRUE(r.series.empty());
    EXPECT_EQ(r.trace, nullptr);
    EXPECT_EQ(r.counters.eventsPopped, 0u);
}

TEST(AnalyticalBackend, IsDeterministic)
{
    auto cfg = smallConfig(4, 2, sim::BackendKind::Analytical);
    auto a = Experiment::run(cfg);
    auto b = Experiment::run(cfg);
    EXPECT_EQ(a.avgIterationSeconds, b.avgIterationSeconds);
    EXPECT_EQ(a.totalEnergyJ, b.totalEnergyJ);
}

TEST(AnalyticalBackend, AppliesMemoryScreen)
{
    auto cfg = smallConfig(1, 1, sim::BackendKind::Analytical);
    cfg.model = model::gpt3_175b(); // 350 GB of weights on one GPU
    cfg.par = parallel::ParallelConfig::forWorld(8, 1, 1);
    auto r = Experiment::run(cfg);
    EXPECT_FALSE(r.feasible);
}

TEST(AnalyticalBackend, RejectsFaultScenarios)
{
    auto cfg = smallConfig(2, 4, sim::BackendKind::Analytical);
    cfg.faultScenario = faults::scenarios::straggler(0, 0.5);
    EXPECT_DEATH(Experiment::run(cfg), "DES backend");
}

TEST(AnalyticalBackend, RejectsResilience)
{
    auto cfg = smallConfig(2, 4, sim::BackendKind::Analytical);
    cfg.resilience.enabled = true;
    EXPECT_DEATH(Experiment::run(cfg), "DES backend");
}

// ---- the strict --backend= flag parser ---------------------------------------

TEST(SweepFlagsDeath, UnknownBackendExitsTwo)
{
    const char* argv[] = {"bench", "--backend=roofline"};
    EXPECT_EXIT(benchutil::sweepFlags(2, const_cast<char**>(argv)),
                testing::ExitedWithCode(2), "unknown backend");
}

TEST(SweepFlagsDeath, EmptyBackendExitsTwo)
{
    const char* argv[] = {"bench", "--backend="};
    EXPECT_EXIT(benchutil::sweepFlags(2, const_cast<char**>(argv)),
                testing::ExitedWithCode(2), "unknown backend");
}

TEST(SweepFlags, ParsesBackendValues)
{
    const char* argv[] = {"bench", "--backend=analytical"};
    auto flags =
        benchutil::sweepFlags(2, const_cast<char**>(argv));
    EXPECT_EQ(flags.backend, sim::BackendKind::Analytical);
    const char* argv2[] = {"bench", "--backend=des"};
    flags = benchutil::sweepFlags(2, const_cast<char**>(argv2));
    EXPECT_EQ(flags.backend, sim::BackendKind::Des);
}

TEST(AnalyticalBackend, SharedProjectorAllReduceIsMonotone)
{
    Bytes grad(10e9);
    BytesPerSec bw(12.5e9);
    Seconds lat(18e-6);
    double t4 = AnalyticalBackend::dataParallelAllReduceSeconds(
                    4, grad, bw, lat)
                    .value();
    double t32 = AnalyticalBackend::dataParallelAllReduceSeconds(
                     32, grad, bw, lat)
                     .value();
    EXPECT_GT(t4, 0.0);
    // Ring allreduce wire volume per rank grows with (n-1)/n.
    EXPECT_GT(t32, t4);
    double t1 = AnalyticalBackend::dataParallelAllReduceSeconds(
                    1, grad, bw, lat)
                    .value();
    EXPECT_DOUBLE_EQ(t1, lat.value());
}

} // namespace
