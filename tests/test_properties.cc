/**
 * @file
 * Property-based tests (parameterized sweeps) over the simulator's
 * invariants: flow-network conservation and fairness, collective cost
 * monotonicity, memory-planner monotonicity, rank-mapper bijections,
 * thermal-model physics, and end-to-end engine invariants across the
 * parallelism design space.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "coll/collective_engine.hh"
#include "common/rng.hh"
#include "hw/calibration.hh"
#include "coll/cost_model.hh"
#include "core/cluster.hh"
#include "core/experiment.hh"
#include "hw/thermal_model.hh"
#include "net/calibration.hh"
#include "net/flow_network.hh"
#include "parallel/memory_planner.hh"
#include "parallel/rank_mapper.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;

// ---- flow network properties -----------------------------------------------

struct FlowProperty : ::testing::TestWithParam<int>
{
};

TEST_P(FlowProperty, BytesConservedAndAllFlowsComplete)
{
    // Pseudo-random flow sets of varying size: every byte injected
    // must be accounted on every link of its route, and all flows
    // must complete in finite time.
    int n_flows = GetParam();
    sim::Simulator s;
    net::Topology topo(net::Topology::hgxParams(4));
    net::FlowNetwork netw(s, topo);
    Rng rng(static_cast<std::uint64_t>(n_flows) * 7919);

    double injected_pcie = 0.0;
    int completed = 0;
    for (int i = 0; i < n_flows; ++i) {
        int src = static_cast<int>(rng.below(32));
        int dst = static_cast<int>(rng.below(32));
        if (dst == src)
            dst = (dst + 1) % 32;
        double bytes = 1e6 * (1.0 + rng.uniform() * 50.0);
        if (!topo.sameNode(src, dst))
            injected_pcie += 2.0 * bytes; // src + dst PCIe ports
        netw.transfer(src, dst, Bytes(bytes),
                      [&completed] { ++completed; });
    }
    s.run();
    EXPECT_EQ(completed, n_flows);
    EXPECT_EQ(netw.numActiveFlows(), 0u);

    double counted_pcie = 0.0;
    for (int l = 0; l < static_cast<int>(topo.links().size()); ++l) {
        if (topo.link(l).cls == hw::TrafficClass::Pcie)
            counted_pcie += netw.linkBytes(l).value();
    }
    EXPECT_NEAR(counted_pcie, injected_pcie,
                std::max(1.0, injected_pcie * 1e-6));
}

TEST_P(FlowProperty, RatesNeverExceedLinkCapacity)
{
    int n_flows = GetParam();
    sim::Simulator s;
    net::Topology topo(net::Topology::hgxParams(2));
    net::FlowNetwork netw(s, topo);
    Rng rng(static_cast<std::uint64_t>(n_flows) * 104729);
    for (int i = 0; i < n_flows; ++i) {
        int src = static_cast<int>(rng.below(16));
        int dst = (src + 1 + static_cast<int>(rng.below(15))) % 16;
        netw.transfer(src, dst, Bytes(5e7 + rng.uniform() * 5e8),
                      [] {});
    }
    // Probe utilization while flows are in flight.
    bool violated = false;
    s.schedule(sim::toTicks(0.005), [&] {
        for (int l = 0; l < static_cast<int>(topo.links().size());
             ++l) {
            if (netw.linkUtilization(l) > 1.0 + 1e-6)
                violated = true;
        }
    });
    s.run();
    EXPECT_FALSE(violated);
}

INSTANTIATE_TEST_SUITE_P(FlowSweep, FlowProperty,
                         ::testing::Values(1, 4, 16, 64, 200));

// ---- collective cost properties ---------------------------------------------

struct CollectiveCostProperty
    : ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(CollectiveCostProperty, CostsMonotonicAndPositive)
{
    auto [n, raw_bytes] = GetParam();
    Bytes bytes(raw_bytes);
    BytesPerSec bw(100e9);
    Seconds lat(1e-5);
    double ar = coll::ringAllReduceSeconds(n, bytes, bw, lat).value();
    double ag = coll::ringAllGatherSeconds(n, bytes, bw, lat).value();
    double a2a = coll::allToAllSeconds(n, bytes, bw, lat).value();
    if (n > 1) {
        EXPECT_GT(ar, 0.0);
        // AllReduce moves twice the AllGather volume.
        EXPECT_GT(ar, ag);
        // More data never gets cheaper.
        EXPECT_GE(
            coll::ringAllReduceSeconds(n, bytes * 2.0, bw, lat).value(),
            ar);
        // More bandwidth never hurts.
        EXPECT_LE(
            coll::ringAllReduceSeconds(n, bytes, bw * 2.0, lat).value(),
            ar);
        EXPECT_GT(a2a, 0.0);
    } else {
        EXPECT_DOUBLE_EQ(ar, 0.0);
        EXPECT_DOUBLE_EQ(ag, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CostSweep, CollectiveCostProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 64),
                       ::testing::Values(1e4, 1e7, 1e10)));

// ---- memory planner properties -----------------------------------------------

struct MemoryProperty
    : ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MemoryProperty, FootprintMonotonicInKnobs)
{
    auto [tp, pp, mb] = GetParam();
    auto cfg = model::gpt3_30b();
    if (pp > cfg.numLayers)
        GTEST_SKIP();
    auto par = parallel::ParallelConfig::forWorld(tp * pp, tp, pp);
    parallel::MemoryPlanner planner(cfg, par);
    parallel::MemoryOptions opts;
    opts.microbatchSize = mb;
    opts.microbatchesInFlight = pp;
    auto mem = planner.worstStage(opts);
    EXPECT_GT(mem.total(), 0.0);

    // Larger microbatch never shrinks activations.
    auto opts2 = opts;
    opts2.microbatchSize = mb * 2;
    EXPECT_GE(planner.worstStage(opts2).activations,
              mem.activations);

    // Recomputation never grows activations.
    auto opts3 = opts;
    opts3.actRecompute = true;
    EXPECT_LE(planner.worstStage(opts3).activations,
              mem.activations);

    // Inference never exceeds training.
    auto opts4 = opts;
    opts4.inference = true;
    EXPECT_LE(planner.worstStage(opts4).total(), mem.total());

    // Stage layer counts always cover the model.
    int layers = 0;
    for (int s = 0; s < pp; ++s)
        layers += planner.layersOnStage(s);
    EXPECT_EQ(layers, cfg.numLayers);
}

INSTANTIATE_TEST_SUITE_P(
    MemorySweep, MemoryProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1, 4)));

// ---- rank mapper properties -----------------------------------------------------

struct MapperProperty
    : ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(MapperProperty, GroupsPartitionTheWorld)
{
    auto [tp, pp, dp, ep] = GetParam();
    if (dp % ep != 0)
        GTEST_SKIP();
    parallel::ParallelConfig cfg;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.dp = dp;
    cfg.ep = ep;
    parallel::RankMapper map(cfg);
    int world = cfg.worldSize();

    // Each group family partitions all devices.
    for (auto family : {0, 1, 2, 3}) {
        std::vector<int> seen(static_cast<std::size_t>(world), 0);
        for (int r = 0; r < world; ++r) {
            std::vector<int> group;
            switch (family) {
              case 0: group = map.tpGroupDevices(r); break;
              case 1: group = map.dpGroupDevices(r); break;
              case 2: group = map.epGroupDevices(r); break;
              default: group = map.ppGroupDevices(r); break;
            }
            // The rank's own device must be in its group.
            EXPECT_NE(std::find(group.begin(), group.end(),
                                map.deviceOf(r)),
                      group.end());
            for (int d : group)
                ++seen[static_cast<std::size_t>(d)];
        }
        // Every device seen exactly group-size times.
        int expected = family == 0   ? tp
                       : family == 1 ? dp
                       : family == 2 ? ep
                                     : pp;
        for (int d = 0; d < world; ++d)
            EXPECT_EQ(seen[static_cast<std::size_t>(d)], expected);
    }

    // Device mapping is a bijection.
    std::vector<int> devs;
    for (int r = 0; r < world; ++r)
        devs.push_back(map.deviceOf(r));
    std::sort(devs.begin(), devs.end());
    for (int d = 0; d < world; ++d)
        EXPECT_EQ(devs[static_cast<std::size_t>(d)], d);
}

INSTANTIATE_TEST_SUITE_P(
    MapperSweep, MapperProperty,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 8),
                       ::testing::Values(1, 2, 8)));

// ---- thermal model properties -----------------------------------------------------

struct ThermalProperty : ::testing::TestWithParam<double>
{
};

TEST_P(ThermalProperty, SteadyStateMonotonicInPower)
{
    double watts = GetParam();
    hw::ThermalModel tm(hw::hgxLayout(), 1);
    std::vector<Watts> low(8, Watts(watts)),
        high(8, Watts(watts * 1.5));
    for (int i = 0; i < 8; ++i) {
        EXPECT_GT(tm.steadyState(i, high).value(),
                  tm.steadyState(i, low).value());
        // Junction always above inlet, inlet never below room.
        EXPECT_GE(tm.inletTemperature(i, low).value(),
                  hw::calib::kRoomTempC - 1e-9);
        EXPECT_GE(tm.steadyState(i, low).value(),
                  tm.inletTemperature(i, low).value());
    }
}

TEST_P(ThermalProperty, IntegrationConvergesToSteadyState)
{
    double watts = GetParam();
    hw::ThermalModel tm(hw::hgxLayout(), 1);
    std::vector<Watts> powers(8, Watts(watts));
    for (int step = 0; step < 40000; ++step)
        tm.step(Seconds(0.002), powers);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(tm.temperature(i).value(),
                    tm.steadyState(i, powers).value(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(ThermalSweep, ThermalProperty,
                         ::testing::Values(50.0, 200.0, 450.0, 700.0));

// ---- end-to-end engine invariants ---------------------------------------------------

struct EngineProperty
    : ::testing::TestWithParam<std::tuple<int, int, bool, bool>>
{
    static model::TransformerConfig
    tiny()
    {
        model::TransformerConfig c;
        c.name = "PropTiny";
        c.numLayers = 8;
        c.hiddenSize = 1536;
        c.numHeads = 12;
        c.numQueryGroups = 12;
        c.ffnHiddenSize = 6144;
        c.vocabSize = 16000;
        c.seqLength = 512;
        return c;
    }
};

TEST_P(EngineProperty, InvariantsHoldAcrossDesignSpace)
{
    auto [tp, pp, act, cc] = GetParam();
    if (tp * pp > 8)
        GTEST_SKIP() << "layout exceeds the 8-GPU test cluster";
    core::ExperimentConfig cfg;
    cfg.cluster = core::h200Cluster(1);
    cfg.model = tiny();
    cfg.par = parallel::ParallelConfig::forWorld(8, tp, pp);
    cfg.train.globalBatchSize = 16;
    cfg.train.actRecompute = act;
    cfg.train.ccOverlap = cc;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 2;
    auto r = core::Experiment::run(cfg);
    ASSERT_TRUE(r.feasible) << cfg.label();

    // Time, throughput, and energy are positive and consistent.
    EXPECT_GT(r.avgIterationSeconds, 0.0);
    EXPECT_GT(r.tokensPerSecond, 0.0);
    EXPECT_GT(r.totalEnergyJ, 0.0);
    // Energy bounded by worst-case (peak cap x GPUs x time).
    double bound = hw::calib::kPeakPowerCap *
                   cfg.cluster.gpu.tdpWatts.value() * 8.0 * 2.0 *
                   r.avgIterationSeconds * 1.05;
    EXPECT_LT(r.totalEnergyJ, bound);

    // Per-rank kernel time never exceeds wall time per iteration
    // (single device can't be busy longer than the iteration, modulo
    // concurrent send kernels counted on the async stream).
    for (const auto& g : r.gpus) {
        EXPECT_LE(g.breakdown.computeTotal(),
                  r.avgIterationSeconds * 1.02);
    }

    // Physics stay in range.
    EXPECT_GE(r.avgTempC, hw::calib::kRoomTempC - 1.0);
    EXPECT_LT(r.peakTempC, cfg.cluster.gpu.shutdownTempC.value());
    EXPECT_GE(r.avgPowerW, cfg.cluster.gpu.idleWatts.value() * 0.5);
    EXPECT_LE(r.peakPowerW,
              hw::calib::kPeakPowerCap *
                      cfg.cluster.gpu.tdpWatts.value() +
                  1.0);
    EXPECT_GE(r.throttleRatio, 0.0);
    EXPECT_LE(r.throttleRatio, 1.0);

    // Determinism.
    auto r2 = core::Experiment::run(cfg);
    EXPECT_DOUBLE_EQ(r.avgIterationSeconds, r2.avgIterationSeconds);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, EngineProperty,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 4),
                       ::testing::Bool(), ::testing::Bool()));

// ---- MoE engine sweep ------------------------------------------------------------

struct MoeProperty : ::testing::TestWithParam<int>
{
};

TEST_P(MoeProperty, ExpertParallelWidthsAllRun)
{
    int ep = GetParam();
    model::TransformerConfig c = EngineProperty::tiny();
    c.name = "PropMoE";
    c.numExperts = 8;
    c.topK = 2;
    core::ExperimentConfig cfg;
    cfg.cluster = core::h200Cluster(1);
    cfg.model = c;
    cfg.par = parallel::ParallelConfig::forWorld(8, 1, 1, ep);
    cfg.train.globalBatchSize = 16;
    cfg.warmupIterations = 1;
    cfg.measuredIterations = 1;
    auto r = core::Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.tokensPerSecond, 0.0);
    if (ep > 1)
        EXPECT_GT(r.meanBreakdown[hw::KernelClass::AllToAll], 0.0);
    else
        EXPECT_DOUBLE_EQ(r.meanBreakdown[hw::KernelClass::AllToAll],
                         0.0);
}

INSTANTIATE_TEST_SUITE_P(EpSweep, MoeProperty,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
