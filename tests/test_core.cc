/**
 * @file
 * Tests for the core experiment layer: cluster presets (Table 3),
 * configuration catalog, the Experiment API's metric accounting, the
 * memory screen, and thermal-aware placement plans.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/catalog.hh"
#include "core/cluster.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/thermal_placement.hh"

#include <fstream>

namespace {

using namespace charllm;
using namespace charllm::core;

/** Small model so experiment-level tests stay fast. */
model::TransformerConfig
smallModel()
{
    model::TransformerConfig c;
    c.name = "Small-3B";
    c.numLayers = 16;
    c.hiddenSize = 2560;
    c.numHeads = 20;
    c.numQueryGroups = 20;
    c.ffnHiddenSize = 4 * 2560;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

// ---- clusters -----------------------------------------------------------------

TEST(Cluster, PresetsMatchTable3)
{
    auto h200 = h200Cluster();
    EXPECT_EQ(h200.numGpus(), 32);
    EXPECT_EQ(h200.numNodes, 4);
    EXPECT_NEAR(h200.gpu.memoryBytes.value(), 141e9, 1e6);

    auto h100 = h100Cluster();
    EXPECT_EQ(h100.numGpus(), 64);
    EXPECT_EQ(h100.numNodes, 8);
    EXPECT_NEAR(h100.gpu.memoryBytes.value(), 80e9, 1e6);

    auto mi250 = mi250Cluster();
    EXPECT_EQ(mi250.numGpus(), 32);
    EXPECT_TRUE(mi250.network.chiplet);
    EXPECT_TRUE(mi250.gpu.chipletGcd);

    // Identical NIC provisioning (100 Gbps IB) across clusters.
    EXPECT_DOUBLE_EQ(h200.network.nicBw.value(), 12.5e9);
    EXPECT_DOUBLE_EQ(mi250.network.nicBw.value(), 12.5e9);
}

TEST(Cluster, OneGpuPerNodeVariant)
{
    auto one = oneGpuPerNodeCluster(h200Cluster(), 4);
    EXPECT_EQ(one.numGpus(), 4);
    EXPECT_EQ(one.network.gpusPerNode, 1);
    EXPECT_EQ(one.chassis.gpusPerNode(), 1);
}

// ---- catalog -------------------------------------------------------------------

TEST(Catalog, DenseConfigsMatchPaperSet)
{
    auto configs = paperConfigs(model::gpt3_175b(), h200Cluster());
    std::vector<std::string> labels;
    for (const auto& c : configs)
        labels.push_back(c.label());
    EXPECT_NE(std::find(labels.begin(), labels.end(), "TP8-PP4"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(), "TP2-PP16"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(), "TP1-PP32"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(), "TP8-FSDP4"),
              labels.end());
}

TEST(Catalog, MoeConfigsIncludeEp8Tp1)
{
    auto configs = paperConfigs(model::mixtral_8x22b(), h200Cluster());
    bool found = false;
    for (const auto& c : configs)
        found |= c.label() == "EP8-TP1-PP4-DP8";
    EXPECT_TRUE(found);
}

TEST(Catalog, MaxExpertParallelDividesBoth)
{
    EXPECT_EQ(maxExpertParallel(model::mixtral_8x22b(), 8), 8);
    EXPECT_EQ(maxExpertParallel(model::mixtral_8x22b(), 6), 2);
    EXPECT_EQ(maxExpertParallel(model::mixtral_4x7b(), 8), 4);
    EXPECT_EQ(maxExpertParallel(model::gpt3_175b(), 8), 1);
}

// ---- experiment ------------------------------------------------------------------

struct CoreFixture : ::testing::Test
{
    ExperimentConfig
    smallConfig(int tp, int pp)
    {
        ExperimentConfig cfg;
        cfg.cluster = h200Cluster(1);
        cfg.model = smallModel();
        cfg.par = parallel::ParallelConfig::forWorld(8, tp, pp);
        cfg.train.globalBatchSize = 16;
        cfg.warmupIterations = 1;
        cfg.measuredIterations = 2;
        return cfg;
    }
};

TEST_F(CoreFixture, MetricsAreConsistent)
{
    auto r = Experiment::run(smallConfig(2, 4));
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.iterationSeconds.size(), 2u);
    EXPECT_GT(r.avgIterationSeconds, 0.0);
    EXPECT_NEAR(r.tokensPerSecond,
                r.tokensPerIteration / r.avgIterationSeconds, 1e-6);
    EXPECT_NEAR(r.tokensPerJoule * r.energyPerTokenJ, 1.0, 1e-9);
    EXPECT_EQ(r.gpus.size(), 8u);
    EXPECT_GE(r.peakPowerW, r.avgPowerW);
    EXPECT_GE(r.peakTempC, r.avgTempC);
    // Energy equals the sum of per-GPU energies.
    double sum = 0.0;
    for (const auto& g : r.gpus)
        sum += g.energyJ;
    EXPECT_NEAR(sum, r.totalEnergyJ, 1e-6 * sum);
}

TEST_F(CoreFixture, LabelEncodesOptions)
{
    auto cfg = smallConfig(2, 4);
    cfg.train.actRecompute = true;
    cfg.train.ccOverlap = true;
    cfg.train.microbatchSize = 2;
    EXPECT_EQ(cfg.label(), "Small-3B H200 TP2-PP4+act+cc mb2");
}

TEST_F(CoreFixture, InfeasibleConfigRejected)
{
    auto cfg = smallConfig(1, 1);
    cfg.model = model::gpt3_175b(); // 350 GB of weights on one GPU
    cfg.par = parallel::ParallelConfig::forWorld(8, 1, 1);
    EXPECT_FALSE(Experiment::fits(cfg));
    auto r = Experiment::run(cfg);
    EXPECT_FALSE(r.feasible);
    EXPECT_TRUE(r.iterationSeconds.empty());
}

TEST_F(CoreFixture, SamplerSeriesCollected)
{
    auto cfg = smallConfig(2, 4);
    cfg.enableSampler = true;
    cfg.samplePeriodSec = 0.005;
    auto r = Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(r.series.size(), 8u);
    EXPECT_GT(r.series[0].size(), 10u);
    // Samples carry plausible physics.
    for (const auto& s : r.series[0]) {
        EXPECT_GT(s.powerWatts.value(), 50.0);
        EXPECT_GE(s.tempC.value(), 20.0);
        EXPECT_GT(s.clockGhz, 0.5);
    }
}

TEST_F(CoreFixture, TraceCollectedWhenEnabled)
{
    auto cfg = smallConfig(2, 4);
    cfg.enableTrace = true;
    auto r = Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->size(), 100u);
    // Breakdown from trace after warmup matches engine accounting to
    // first order (same classes populated).
    auto b = r.trace->breakdown(0, r.measureStartSec);
    EXPECT_GT(b.computeTotal(), 0.0);
}

TEST_F(CoreFixture, BreakdownPerIterationScaling)
{
    // Doubling measured iterations must not change the per-iteration
    // breakdown (it is normalized).
    auto cfg = smallConfig(2, 4);
    auto r1 = Experiment::run(cfg);
    cfg.measuredIterations = 4;
    auto r2 = Experiment::run(cfg);
    EXPECT_NEAR(r1.meanBreakdown.total(), r2.meanBreakdown.total(),
                r1.meanBreakdown.total() * 0.1);
}

TEST_F(CoreFixture, RecomputeAppearsInBreakdown)
{
    auto cfg = smallConfig(1, 4);
    cfg.train.actRecompute = true;
    auto r = Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    EXPECT_GT(r.meanBreakdown[hw::KernelClass::Recompute], 0.0);
}

TEST_F(CoreFixture, DeterministicResults)
{
    auto a = Experiment::run(smallConfig(2, 4));
    auto b = Experiment::run(smallConfig(2, 4));
    EXPECT_DOUBLE_EQ(a.avgIterationSeconds, b.avgIterationSeconds);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ, b.totalEnergyJ);
}

TEST_F(CoreFixture, RearGpusRunHotter)
{
    // Sustained uniform load long enough for the thermal RC network
    // (tau = 6 s) to develop the front/rear differential.
    auto cfg = smallConfig(8, 1);
    cfg.train.globalBatchSize = 512;
    cfg.warmupIterations = 2;
    auto r = Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);
    // Odd device ids sit at the exhaust (interleaved HGX rows).
    double front = 0.0, rear = 0.0;
    for (int i = 0; i < 8; i += 2)
        front += r.gpus[static_cast<std::size_t>(i)].avgTempC;
    for (int i = 1; i < 8; i += 2)
        rear += r.gpus[static_cast<std::size_t>(i)].avgTempC;
    EXPECT_GT(rear / 4.0, front / 4.0 + 3.0);
}

// ---- thermal placement --------------------------------------------------------

TEST(ThermalPlacement, PermutationIsValid)
{
    auto cluster = h200Cluster();
    auto par = parallel::ParallelConfig::forWorld(32, 4, 8);
    auto plan = coldFirstPlacement(cluster, par);
    ASSERT_EQ(plan.devicePermutation.size(), 32u);
    std::vector<int> sorted = plan.devicePermutation;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(ThermalPlacement, StagesAreThermallyUniform)
{
    auto cluster = h200Cluster();
    auto par = parallel::ParallelConfig::forWorld(32, 4, 8);
    auto plan = coldFirstPlacement(cluster, par);
    // Every stage's 4 devices share one airflow row.
    for (int pp_idx = 0; pp_idx < 8; ++pp_idx) {
        int row = -1;
        for (int tp_idx = 0; tp_idx < 4; ++tp_idx) {
            int dev = plan.devicePermutation[static_cast<std::size_t>(
                tp_idx + 4 * pp_idx)];
            int slot_row =
                cluster.chassis.slots[static_cast<std::size_t>(
                                          dev % 8)]
                    .airflowRow;
            if (row < 0)
                row = slot_row;
            EXPECT_EQ(slot_row, row) << "stage " << pp_idx;
        }
        EXPECT_EQ(plan.coldStage[static_cast<std::size_t>(pp_idx)],
                  row == 0);
    }
}

TEST(ThermalPlacement, HeadStageIsCold)
{
    auto cluster = h200Cluster();
    auto par = parallel::ParallelConfig::forWorld(32, 4, 8);
    auto plan = coldFirstPlacement(cluster, par);
    EXPECT_TRUE(plan.coldStage[7]);
}

TEST(ThermalPlacement, AsymmetricLayersPreserveTotal)
{
    auto cluster = h200Cluster();
    auto par = parallel::ParallelConfig::forWorld(32, 4, 8);
    auto plan = coldFirstPlacement(cluster, par);
    auto layers = asymmetricStageLayers(plan, 96, 1);
    EXPECT_EQ(std::accumulate(layers.begin(), layers.end(), 0), 96);
    for (int s = 0; s < 8; ++s) {
        EXPECT_EQ(layers[static_cast<std::size_t>(s)],
                  plan.coldStage[static_cast<std::size_t>(s)] ? 13
                                                              : 11);
    }
}

TEST(ThermalPlacement, CoolnessOrderPutsIntakeFirst)
{
    auto order = coolnessOrder(hw::hgxLayout());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)] % 2, 0);
}


// ---- report exporters -----------------------------------------------------

TEST_F(CoreFixture, ReportCsvExports)
{
    auto cfg = smallConfig(2, 4);
    cfg.enableSampler = true;
    auto r = Experiment::run(cfg);
    ASSERT_TRUE(r.feasible);

    auto summary = summaryCsv({r, r});
    EXPECT_EQ(summary.numRows(), 2u);
    EXPECT_NE(summary.str().find("tokens_per_s"), std::string::npos);
    EXPECT_NE(summary.str().find(r.label), std::string::npos);

    auto gpus = gpuMetricsCsv(r);
    EXPECT_EQ(gpus.numRows(), 8u);

    auto breakdown = breakdownCsv(r);
    EXPECT_GE(breakdown.numRows(), 3u); // GEMM, Attention, comm...

    auto series = seriesCsv(r);
    EXPECT_GT(series.numRows(), 8u);
}

TEST_F(CoreFixture, ReportJsonWellFormed)
{
    auto r = Experiment::run(smallConfig(2, 4));
    std::string json = toJson(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"feasible\":true"), std::string::npos);
    EXPECT_NE(json.find("\"gpus\":8"), std::string::npos);
}

TEST_F(CoreFixture, WriteReportsCreatesFiles)
{
    auto cfg = smallConfig(2, 4);
    auto r = Experiment::run(cfg);
    auto paths = writeReports(r, "/tmp/charllm_report_test", "t24");
    // summary + gpus + breakdown + run report; no sampler -> no
    // series file, no trace -> no trace/phase files.
    ASSERT_EQ(paths.size(), 4u);
    for (const auto& p : paths) {
        std::ifstream f(p);
        EXPECT_TRUE(f.good()) << p;
    }
}

} // namespace
