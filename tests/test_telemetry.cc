/**
 * @file
 * Tests for the telemetry layer: Zeus-like sampler, Chakra-like
 * kernel trace, and the sim-NVML facade.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "net/flow_network.hh"
#include "sim/simulator.hh"
#include "telemetry/sampler.hh"
#include "telemetry/simnvml.hh"
#include "telemetry/trace.hh"

namespace {

using namespace charllm;
using namespace charllm::telemetry;

struct TelemetryFixture : ::testing::Test
{
    TelemetryFixture()
        : topo(net::Topology::hgxParams(1)),
          plat(sim, hw::h200Spec(), hw::hgxLayout(), 1),
          netw(sim, topo)
    {
    }

    sim::Simulator sim;
    net::Topology topo;
    hw::Platform plat;
    net::FlowNetwork netw;
};

TEST_F(TelemetryFixture, SamplerCollectsPeriodicSamples)
{
    Sampler sampler(plat, netw, Seconds(0.01));
    plat.start();
    // Keep the simulation alive for ~0.5 s with a busy GPU.
    auto tok = plat.gpu(0).kernelBegin(hw::KernelClass::Gemm, 1.0, 0.0);
    sim.schedule(sim::toTicks(0.5), [] {});
    sim.run();
    plat.gpu(0).kernelEnd(tok, sim.nowSeconds());

    ASSERT_GE(sampler.series(0).size(), 40u);
    // GPU 0 busy, GPU 2 idle: power ordering visible in samples.
    const auto& busy = sampler.series(0).back();
    const auto& idle = sampler.series(2).back();
    EXPECT_GT(busy.powerWatts.value(), idle.powerWatts.value() + 200.0);
    EXPECT_GT(busy.tempC, idle.tempC);
}

TEST_F(TelemetryFixture, SamplerCapturesLinkRates)
{
    Sampler sampler(plat, netw, Seconds(0.002));
    plat.start();
    netw.transfer(0, 1, Bytes(9e9), [] {}); // ~20 ms on NVLink
    sim.run();
    bool saw_rate = false;
    for (const auto& s : sampler.series(0))
        saw_rate |= s.scaleUpRate.value() > 100e9;
    EXPECT_TRUE(saw_rate);
}

TEST_F(TelemetryFixture, SamplerCsvExport)
{
    Sampler sampler(plat, netw, Seconds(0.01));
    plat.start();
    sim.schedule(sim::toTicks(0.05), [] {});
    sim.run();
    auto csv = sampler.toCsv();
    EXPECT_EQ(csv.numColumns(), 9u);
    EXPECT_GT(csv.numRows(), 8u * 3u);
    EXPECT_NE(csv.str().find("power_w"), std::string::npos);
    EXPECT_NE(csv.str().find("fault"), std::string::npos);
}

TEST_F(TelemetryFixture, SamplerClearDropsHistory)
{
    Sampler sampler(plat, netw, Seconds(0.01));
    sampler.sampleNow();
    EXPECT_GT(sampler.numSamples(), 0u);
    sampler.clear();
    EXPECT_EQ(sampler.numSamples(), 0u);
}

TEST_F(TelemetryFixture, SamplerDecimatesAtRetentionCap)
{
    // Cap of 16 with ~100 ticks: the stride must double (repeatedly)
    // and the retained series stay bounded and uniformly spaced.
    Sampler sampler(plat, netw, Seconds(0.01), 16);
    plat.start();
    sim.schedule(sim::toTicks(1.0), [] {});
    sim.run();

    EXPECT_GT(sampler.keepEvery(), 1u);
    EXPECT_EQ(sampler.maxSamplesPerGpu(), 16u);
    const auto& series = sampler.series(0);
    ASSERT_GE(series.size(), 8u);
    EXPECT_LE(series.size(), 16u);
    // Uniform spacing: stride ticker periods between kept samples.
    double expected =
        0.01 * static_cast<double>(sampler.keepEvery());
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_NEAR(series[i].time.value() -
                        series[i - 1].time.value(),
                    expected, 1e-9);
    // Coverage still spans (nearly) the whole run.
    EXPECT_GT(series.back().time.value(), 0.9);
}

TEST_F(TelemetryFixture, SamplerUnboundedWhenCapIsZero)
{
    Sampler sampler(plat, netw, Seconds(0.01), 0);
    plat.start();
    sim.schedule(sim::toTicks(1.0), [] {});
    sim.run();
    EXPECT_EQ(sampler.keepEvery(), 1u);
    EXPECT_GE(sampler.series(0).size(), 99u);
}

// ---- trace ---------------------------------------------------------------------

TEST(KernelTrace, RecordsAndFilters)
{
    KernelTrace trace;
    trace.record(0, hw::KernelClass::Gemm, "fwd", 0.0, 0.5);
    trace.record(1, hw::KernelClass::AllReduce, "ar", 0.1, 0.2);
    trace.record(0, hw::KernelClass::Gemm, "fwd", 1.0, 0.25);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.forDevice(0).size(), 2u);
    auto b = trace.breakdown(0);
    EXPECT_DOUBLE_EQ(b[hw::KernelClass::Gemm], 0.75);
    auto late = trace.breakdown(0, 0.9);
    EXPECT_DOUBLE_EQ(late[hw::KernelClass::Gemm], 0.25);
}

TEST(KernelTrace, ChromeJsonWellFormed)
{
    KernelTrace trace;
    trace.record(3, hw::KernelClass::SendRecv, "p2p", 0.5, 0.1);
    std::string json = trace.toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"SendRecv\""), std::string::npos);
}

TEST(KernelTrace, InternedNamesAreStableAndEscaped)
{
    KernelTrace trace;
    const char* a = trace.intern("layer \"0\" attn");
    const char* b = trace.intern("tail\n");
    trace.record(0, hw::KernelClass::Gemm, a, 0.0, 0.1);
    trace.record(0, hw::KernelClass::Gemm, b, 0.2, 0.1);
    // Interned pointers stay valid after further interning (deque
    // storage never moves).
    for (int i = 0; i < 100; ++i)
        trace.intern("pad" + std::to_string(i));
    EXPECT_STREQ(trace.all()[0].name, "layer \"0\" attn");
    EXPECT_STREQ(trace.all()[1].name, "tail\n");
    // Export escapes the quotes and the newline.
    std::string json = trace.toChromeJson();
    EXPECT_NE(json.find("layer \\\"0\\\" attn"), std::string::npos);
    EXPECT_NE(json.find("tail\\n"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(KernelTrace, FaultSpansAndHorizon)
{
    KernelTrace trace;
    EXPECT_DOUBLE_EQ(trace.horizonSec(), 0.0);
    trace.record(0, hw::KernelClass::Gemm, "k", 0.0, 1.5);
    trace.recordFault(1, "hot-inlet", 1.0, 2.0);
    ASSERT_EQ(trace.faultSpans().size(), 1u);
    EXPECT_STREQ(trace.faultSpans()[0].name, "hot-inlet");
    // Horizon covers the later of kernel and fault end.
    EXPECT_DOUBLE_EQ(trace.horizonSec(), 3.0);
    trace.clear();
    EXPECT_TRUE(trace.faultSpans().empty());
    EXPECT_DOUBLE_EQ(trace.horizonSec(), 0.0);
}

// ---- sim-NVML ------------------------------------------------------------------

TEST_F(TelemetryFixture, NvmlFacadeReadsDeviceState)
{
    using namespace simnvml;
    unsigned int count = 0;
    ASSERT_EQ(deviceGetCount(plat, &count), SIMNVML_SUCCESS);
    EXPECT_EQ(count, 8u);

    DeviceHandle h;
    ASSERT_EQ(deviceGetHandleByIndex(plat, 0, &h), SIMNVML_SUCCESS);

    unsigned int temp = 0, mw = 0, mhz = 0, util = 0;
    EXPECT_EQ(deviceGetTemperature(h, &temp), SIMNVML_SUCCESS);
    EXPECT_NEAR(temp, 27, 3);
    EXPECT_EQ(deviceGetPowerUsage(h, &mw), SIMNVML_SUCCESS);
    EXPECT_GT(mw, 50000u); // idle ~75 W in milliwatts
    EXPECT_EQ(deviceGetClockInfo(h, &mhz), SIMNVML_SUCCESS);
    EXPECT_NEAR(mhz, 1830, 200);
    EXPECT_EQ(deviceGetUtilizationRates(h, &util), SIMNVML_SUCCESS);
    EXPECT_EQ(util, 0u);

    auto tok = plat.gpu(0).kernelBegin(hw::KernelClass::Gemm, 1.0, 0.0);
    EXPECT_EQ(deviceGetUtilizationRates(h, &util), SIMNVML_SUCCESS);
    EXPECT_GT(util, 30u);
    plat.gpu(0).kernelEnd(tok, 1.0);

    std::uint64_t mj = 0;
    EXPECT_EQ(deviceGetTotalEnergyConsumption(h, &mj),
              SIMNVML_SUCCESS);
    EXPECT_GT(mj, 0u);
}

TEST_F(TelemetryFixture, NvmlFacadeRejectsBadArguments)
{
    using namespace simnvml;
    DeviceHandle h;
    EXPECT_EQ(deviceGetHandleByIndex(plat, 99, &h),
              SIMNVML_ERROR_NOT_FOUND);
    EXPECT_EQ(deviceGetCount(plat, nullptr),
              SIMNVML_ERROR_INVALID_ARGUMENT);
    DeviceHandle invalid;
    unsigned int temp;
    EXPECT_EQ(deviceGetTemperature(invalid, &temp),
              SIMNVML_ERROR_INVALID_ARGUMENT);
}

} // namespace
