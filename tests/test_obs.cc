/**
 * @file
 * Tests for the observability layer: the unified Perfetto trace
 * builder, the phase-attribution engine, and the metrics registry.
 * Trace output is checked with a small strict JSON parser, so every
 * golden test also proves the serialized bytes are valid JSON.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "faults/scenarios.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/trace_builder.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace.hh"

namespace {

using namespace charllm;

// ---- a strict minimal JSON parser --------------------------------------
// Just enough JSON to verify trace/metrics output: objects, arrays,
// strings with escapes, numbers, booleans, null. Throws on any syntax
// error, so "parses" is a real assertion.

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    const JsonValue&
    at(const std::string& key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string& key) const
    {
        return fields.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        if (pos != s.size())
            throw std::runtime_error("trailing bytes after JSON");
        return v;
    }

  private:
    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            throw std::runtime_error("unexpected end of JSON");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at byte " +
                                     std::to_string(pos));
        ++pos;
    }

    JsonValue
    value()
    {
        ws();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::String;
            v.str = string();
            return v;
        }
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return number();
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Object;
        ws();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            ws();
            std::string key = string();
            ws();
            expect(':');
            v.fields[key] = value();
            ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Array;
        ws();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.items.push_back(value());
            ws();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = peek();
            ++pos;
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                throw std::runtime_error(
                    "raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char esc = peek();
            ++pos;
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'u': {
                if (pos + 4 > s.size())
                    throw std::runtime_error("truncated \\u escape");
                int code = std::stoi(s.substr(pos, 4), nullptr, 16);
                pos += 4;
                out.push_back(static_cast<char>(code)); // BMP-lite
                break;
            }
            default:
                throw std::runtime_error("bad escape");
            }
        }
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    number()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            throw std::runtime_error("bad number");
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(s.substr(start, pos - start));
        return v;
    }

    void
    literal(const char* lit)
    {
        for (const char* p = lit; *p != '\0'; ++p) {
            if (peek() != *p)
                throw std::runtime_error("bad literal");
            ++pos;
        }
    }

    const std::string& s;
    std::size_t pos = 0;
};

JsonValue
parseJson(const std::string& text)
{
    return JsonParser(text).parse();
}

telemetry::Sample
makeSample(double t, double watts)
{
    telemetry::Sample s;
    s.time = Seconds(t);
    s.powerWatts = Watts(watts);
    s.tempC = Celsius(40.0);
    s.clockGhz = 1.8;
    s.occupancy = 0.5;
    s.pcieRate = BytesPerSec(1e9);
    s.scaleUpRate = BytesPerSec(2e9);
    return s;
}

// ---- trace builder ------------------------------------------------------

TEST(TraceBuilder, UnifiedTraceParsesAndHasAllTracks)
{
    telemetry::KernelTrace trace;
    trace.record(0, hw::KernelClass::Gemm, "fwd", 0.0, 0.5);
    trace.record(1, hw::KernelClass::AllReduce, "ar", 0.2, 0.3);
    trace.recordFault(0, "hot-inlet", 0.1, 0.2);

    std::vector<telemetry::Sample> s0 = {makeSample(0.1, 300.0),
                                         makeSample(0.2, 310.0)};
    obs::TraceBuilder builder;
    builder.addKernels(trace);
    builder.addCounters(0, s0);
    builder.addRunSpan("iteration", "iteration 0", 0.0, 0.5);

    JsonValue doc = parseJson(builder.toJson());
    const JsonValue& events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, JsonValue::Array);

    int kernels = 0, faults = 0, counters = 0, meta = 0, runs = 0;
    for (const auto& e : events.items) {
        const std::string& ph = e.at("ph").str;
        if (ph == "M")
            ++meta;
        else if (ph == "C")
            ++counters;
        else if (ph == "X" && e.at("cat").str == "fault")
            ++faults;
        else if (ph == "X" && e.at("cat").str == "iteration")
            ++runs;
        else if (ph == "X")
            ++kernels;
    }
    EXPECT_EQ(kernels, 2);
    EXPECT_EQ(faults, 1);
    EXPECT_EQ(runs, 1);
    // 2 samples x 6 counter tracks.
    EXPECT_EQ(counters, 12);
    // 2 GPU processes x 4 meta + run process x 3 meta.
    EXPECT_EQ(meta, 11);
}

TEST(TraceBuilder, EscapesDynamicNames)
{
    telemetry::KernelTrace trace;
    const char* tricky =
        trace.intern(std::string("layer \"7\"\nbackslash\\"));
    trace.record(0, hw::KernelClass::Gemm, tricky, 0.0, 1.0);

    obs::TraceBuilder builder;
    builder.addKernels(trace);
    std::string json = builder.toJson();

    JsonValue doc = parseJson(json); // throws on raw control chars
    bool found = false;
    for (const auto& e : doc.at("traceEvents").items) {
        if (e.at("ph").str == "X" &&
            e.at("name").str == "layer \"7\"\nbackslash\\")
            found = true;
    }
    EXPECT_TRUE(found);
    // The kernel-trace exporter must round-trip the same name too
    // (the shared jsonEscape path).
    EXPECT_NO_THROW(parseJson(trace.toChromeJson()));
}

TEST(TraceBuilder, ClipsOpenEndedFaultSpans)
{
    telemetry::KernelTrace trace;
    trace.record(0, hw::KernelClass::Gemm, "k", 0.0, 2.0);
    trace.recordFault(0, "gpu-slowdown", 0.5, -1.0); // until run end

    obs::TraceBuilder builder;
    builder.addKernels(trace);
    JsonValue doc = parseJson(builder.toJson());
    bool found = false;
    for (const auto& e : doc.at("traceEvents").items) {
        if (e.at("ph").str != "X" || e.at("cat").str != "fault")
            continue;
        found = true;
        EXPECT_GE(e.at("dur").number, 0.0);
        // Clipped to the kernel horizon: (2.0 - 0.5) s in us.
        EXPECT_NEAR(e.at("dur").number, 1.5e6, 1.0);
    }
    EXPECT_TRUE(found);
}

TEST(TraceBuilder, SpansSortedPerDeviceAndDeterministic)
{
    auto build = [] {
        telemetry::KernelTrace trace;
        trace.record(1, hw::KernelClass::Gemm, "c", 2.0, 0.5);
        trace.record(0, hw::KernelClass::Gemm, "b", 1.0, 0.5);
        trace.record(0, hw::KernelClass::Gemm, "a", 0.0, 0.5);
        trace.record(1, hw::KernelClass::Gemm, "d", 0.5, 0.5);
        obs::TraceBuilder builder;
        builder.addKernels(trace);
        return builder.toJson();
    };
    std::string json = build();
    EXPECT_EQ(json, build()) << "builder output must be deterministic";

    JsonValue doc = parseJson(json);
    std::map<std::pair<int, int>, double> lastTs;
    for (const auto& e : doc.at("traceEvents").items) {
        if (e.at("ph").str != "X")
            continue;
        std::pair<int, int> key = {
            static_cast<int>(e.at("pid").number),
            static_cast<int>(e.at("tid").number)};
        double ts = e.at("ts").number;
        auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(ts, it->second);
        }
        lastTs[key] = ts;
    }
}

TEST(TraceBuilder, CounterTracksCarryGpuPid)
{
    std::vector<telemetry::Sample> s1 = {makeSample(0.25, 500.0)};
    obs::TraceBuilder builder;
    builder.addCounters(3, s1);
    JsonValue doc = parseJson(builder.toJson());
    bool sawPower = false;
    for (const auto& e : doc.at("traceEvents").items) {
        if (e.at("ph").str != "C")
            continue;
        EXPECT_EQ(static_cast<int>(e.at("pid").number), 3);
        EXPECT_NEAR(e.at("ts").number, 0.25e6, 1e-6);
        if (e.at("name").str == "power_w") {
            sawPower = true;
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 500.0);
        }
    }
    EXPECT_TRUE(sawPower);
}

// ---- phase attribution --------------------------------------------------

TEST(PhaseAttribution, SyntheticTimelineSplitsExactly)
{
    // dev0: compute [0,1), exposed comm [1,1.5); dev1: compute
    // [0,0.5), then bubbling while dev0 works, then both idle to 2.0.
    telemetry::KernelTrace trace;
    trace.record(0, hw::KernelClass::Gemm, "g", 0.0, 1.0);
    trace.record(0, hw::KernelClass::AllReduce, "ar", 1.0, 0.5);
    trace.record(1, hw::KernelClass::Gemm, "g", 0.0, 0.5);

    // Constant 100 W on both devices, sampled every 0.5 s to 2.0 s.
    std::vector<std::vector<telemetry::Sample>> series(2);
    for (int g = 0; g < 2; ++g)
        for (double t = 0.5; t <= 2.0; t += 0.5)
            series[g].push_back(makeSample(t, 100.0));

    obs::PhaseReport report =
        obs::attributePhases(trace, series, 0.0, 2.0);
    ASSERT_EQ(report.gpus.size(), 2u);

    auto slice = [&](int gpu, obs::Phase p) {
        return report.gpus[gpu]
            .phases[static_cast<std::size_t>(p)];
    };
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::Compute).seconds, 1.0);
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::ExposedComm).seconds, 0.5);
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::Bubble).seconds, 0.0);
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::Idle).seconds, 0.5);

    EXPECT_DOUBLE_EQ(slice(1, obs::Phase::Compute).seconds, 0.5);
    EXPECT_DOUBLE_EQ(slice(1, obs::Phase::ExposedComm).seconds, 0.0);
    EXPECT_DOUBLE_EQ(slice(1, obs::Phase::Bubble).seconds, 1.0);
    EXPECT_DOUBLE_EQ(slice(1, obs::Phase::Idle).seconds, 0.5);

    // Energy at constant 100 W mirrors the durations exactly.
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::Compute).energyJ, 100.0);
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::ExposedComm).energyJ, 50.0);
    EXPECT_DOUBLE_EQ(slice(1, obs::Phase::Bubble).energyJ, 100.0);
    EXPECT_DOUBLE_EQ(slice(0, obs::Phase::Compute).avgPowerW(),
                     100.0);

    // Conservation: phase energies sum to the sampler integral.
    EXPECT_DOUBLE_EQ(report.totalEnergyJ(), 2.0 * 2.0 * 100.0);

    // CSV: (2 GPUs + cluster) x 4 phases rows; JSON parses.
    EXPECT_EQ(report.toCsv().numRows(), 12u);
    JsonValue doc = parseJson(report.toJson());
    EXPECT_DOUBLE_EQ(doc.at("total_energy_j").number, 400.0);
    EXPECT_DOUBLE_EQ(doc.at("cluster")
                         .at("compute")
                         .at("seconds")
                         .number,
                     1.5);
}

TEST(PhaseAttribution, SampleIntervalsSplitAcrossPhaseBoundary)
{
    // One compute kernel [0, 0.75); a single sample at t=1.0 covering
    // (0, 1.0] at 200 W must split 0.75/0.25 between compute and
    // idle.
    telemetry::KernelTrace trace;
    trace.record(0, hw::KernelClass::Gemm, "g", 0.0, 0.75);
    std::vector<std::vector<telemetry::Sample>> series(1);
    series[0].push_back(makeSample(1.0, 200.0));

    obs::PhaseReport report =
        obs::attributePhases(trace, series, 0.0, 1.0);
    const auto& phases = report.gpus[0].phases;
    EXPECT_DOUBLE_EQ(
        phases[static_cast<std::size_t>(obs::Phase::Compute)].energyJ,
        150.0);
    EXPECT_DOUBLE_EQ(
        phases[static_cast<std::size_t>(obs::Phase::Idle)].energyJ,
        50.0);
}

TEST(PhaseAttribution, EmptyInputsProduceEmptyReport)
{
    telemetry::KernelTrace trace;
    obs::PhaseReport report = obs::attributePhases(trace, {});
    EXPECT_TRUE(report.gpus.empty());
    EXPECT_DOUBLE_EQ(report.totalEnergyJ(), 0.0);
}

// ---- metrics ------------------------------------------------------------

TEST(Metrics, CounterGaugeSemantics)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge g;
    g.set(1.5);
    g.set(-2.5);
    EXPECT_DOUBLE_EQ(g.value(), -2.5);

    // Null-safe helpers are no-ops on nullptr.
    obs::add(nullptr, 7);
    obs::observe(nullptr, 1.0);
    obs::Counter c2;
    obs::add(&c2, 7);
    EXPECT_EQ(c2.value(), 7u);
}

TEST(Metrics, HistogramStatsAndBuckets)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    h.observe(1.0);
    h.observe(2.0);
    h.observe(0.5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.sum(), 3.5);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 2.0);
    EXPECT_NEAR(h.mean(), 3.5 / 3.0, 1e-12);

    // 1.0 = 0.5 * 2^1 -> bucket 32: [1, 2). 2.0 -> bucket 33 and
    // 0.5 -> bucket 31.
    EXPECT_EQ(h.bucketCount(32), 1u);
    EXPECT_EQ(h.bucketCount(33), 1u);
    EXPECT_EQ(h.bucketCount(31), 1u);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(32), 2.0);
}

TEST(Metrics, HistogramQuantilesCrossCheckFixedBins)
{
    // Cross-check the log2-bucket quantile estimate against the exact
    // sample quantile and against common/stats.hh's fine fixed-bin
    // Histogram on the same data. The log2 estimate returns a bucket
    // upper bound, so for positive data it brackets the true value
    // from above within a factor of 2 (the bucket width).
    obs::Histogram log2Hist;
    Histogram fineHist(0.0, 130.0, 130000); // 1e-3 wide bins
    std::vector<double> samples;
    std::uint64_t lcg = 0x2545F4914F6CDD1DULL;
    for (int i = 0; i < 4096; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        // Positive, spanning ~3 decades: [0.001, ~128).
        double x = 0.001 + static_cast<double>(lcg >> 40) / 131072.0;
        samples.push_back(x);
        log2Hist.observe(x);
        fineHist.add(x);
    }
    std::sort(samples.begin(), samples.end());
    for (double q : {0.5, 0.9, 0.99}) {
        auto idx = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        double exact = samples[std::min(idx, samples.size()) - 1];
        double est = log2Hist.quantile(q);
        EXPECT_GE(est, exact) << "q=" << q;
        EXPECT_LE(est, 2.0 * exact) << "q=" << q;
        // The fine-binned histogram is near-exact on this range; the
        // log2 estimate must bracket it the same way.
        double fine = fineHist.quantile(q);
        EXPECT_NEAR(fine, exact, 1e-2) << "q=" << q;
        EXPECT_GE(est, fine - 1e-2) << "q=" << q;
        EXPECT_LE(est, 2.0 * fine + 1e-2) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(log2Hist.quantile(0.0), log2Hist.min());
    EXPECT_DOUBLE_EQ(log2Hist.quantile(-1.0), log2Hist.min());
    EXPECT_DOUBLE_EQ(log2Hist.quantile(1.0), log2Hist.max());
    EXPECT_DOUBLE_EQ(log2Hist.quantile(2.0), log2Hist.max());
    obs::Histogram empty;
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Metrics, RegistryStableRefsAndDeterministicDump)
{
    obs::MetricsRegistry reg;
    obs::Counter& a = reg.counter("sim.events_popped");
    a.inc(5);
    // Creating more metrics must not invalidate earlier references.
    for (int i = 0; i < 100; ++i)
        reg.counter("pad." + std::to_string(i));
    a.inc(5);
    EXPECT_EQ(reg.counter("sim.events_popped").value(), 10u);
    EXPECT_EQ(reg.findCounter("sim.events_popped")->value(), 10u);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.size(), 101u);

    reg.gauge("g.x").set(3.0);
    reg.histogram("h.y").observe(2.0);
    JsonValue doc = parseJson(reg.toJson());
    EXPECT_DOUBLE_EQ(
        doc.at("counters").at("sim.events_popped").number, 10.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("g.x").number, 3.0);
    EXPECT_DOUBLE_EQ(
        doc.at("histograms").at("h.y").at("count").number, 1.0);
    EXPECT_EQ(reg.toCsv().numRows(), 103u);
}

TEST(Metrics, SimCountersMergeAndAddTo)
{
    obs::SimCounters a;
    a.eventsPopped = 10;
    a.flowsStarted = 3;
    obs::SimCounters b;
    b.eventsPopped = 5;
    b.faultsInjected = 2;
    a.merge(b);
    EXPECT_EQ(a.eventsPopped, 15u);
    EXPECT_EQ(a.flowsStarted, 3u);
    EXPECT_EQ(a.faultsInjected, 2u);

    obs::MetricsRegistry reg;
    a.addTo(reg);
    EXPECT_EQ(reg.findCounter("sim.events_popped")->value(), 15u);
    EXPECT_EQ(reg.findCounter("net.flows_started")->value(), 3u);
    EXPECT_EQ(reg.findCounter("faults.injected")->value(), 2u);
}

// ---- end-to-end through core::Experiment --------------------------------

struct ObsEndToEnd : ::testing::Test
{
    static core::ExperimentConfig
    config()
    {
        core::ExperimentConfig cfg;
        cfg.cluster = core::h200Cluster(1);
        // Small model so the end-to-end test stays fast.
        cfg.model.name = "Small-3B";
        cfg.model.numLayers = 16;
        cfg.model.hiddenSize = 2560;
        cfg.model.numHeads = 20;
        cfg.model.numQueryGroups = 20;
        cfg.model.ffnHiddenSize = 4 * 2560;
        cfg.model.vocabSize = 32000;
        cfg.model.seqLength = 1024;
        cfg.par = parallel::ParallelConfig::forWorld(8, 2, 4);
        cfg.train.globalBatchSize = 16;
        cfg.warmupIterations = 1;
        cfg.measuredIterations = 1;
        cfg.enableSampler = true;
        cfg.enableTrace = true;
        return cfg;
    }
};

TEST_F(ObsEndToEnd, UnifiedTraceAndPhaseEnergyConservation)
{
    auto cfg = config();
    cfg.faultScenario = faults::scenarios::straggler(1, 0.7, 0.1);
    auto result = core::Experiment::run(cfg);
    ASSERT_TRUE(result.feasible);

    // The unified trace parses and carries every track family.
    JsonValue doc = parseJson(core::unifiedTraceJson(result));
    int kernels = 0, faults = 0, counters = 0, iters = 0;
    for (const auto& e : doc.at("traceEvents").items) {
        const std::string& ph = e.at("ph").str;
        if (ph == "C")
            ++counters;
        else if (ph == "X" && e.at("cat").str == "fault")
            ++faults;
        else if (ph == "X" && e.at("cat").str == "iteration")
            ++iters;
        else if (ph == "X")
            ++kernels;
    }
    EXPECT_GT(kernels, 100);
    EXPECT_GE(faults, 1);
    EXPECT_GT(counters, 100);
    EXPECT_EQ(iters, 2); // 1 warmup + 1 measured

    // Phase energies must sum to the sampler-integrated total
    // (acceptance: within 1%; construction makes it exact).
    obs::PhaseReport phases = core::phaseReport(result);
    double integral = 0.0;
    for (const auto& series : result.series) {
        double prev = 0.0;
        for (const auto& s : series) {
            integral +=
                s.powerWatts.value() * (s.time.value() - prev);
            prev = s.time.value();
        }
    }
    ASSERT_GT(integral, 0.0);
    EXPECT_NEAR(phases.totalEnergyJ() / integral, 1.0, 1e-9);

    // Self-profiling counters captured from the live stack.
    EXPECT_GT(result.counters.eventsPopped, 0u);
    EXPECT_GT(result.counters.flowsStarted, 0u);
    EXPECT_GT(result.counters.faultsInjected, 0u);

    // The structured run report parses and embeds all three parts.
    JsonValue report = parseJson(core::runReportJson(result));
    EXPECT_TRUE(report.at("summary").at("feasible").boolean);
    EXPECT_GT(report.at("metrics")
                  .at("counters")
                  .at("sim.events_popped")
                  .number,
              0.0);
    EXPECT_GT(
        report.at("phases").at("total_energy_j").number, 0.0);
}

TEST_F(ObsEndToEnd, QuiescentPausesLandInIdleNeverExposedComm)
{
    // Sync checkpoints stall the whole cluster between iterations:
    // those windows hold no kernels anywhere, so phase attribution
    // must classify every sample inside them as Idle — never
    // ExposedComm (no GPU is waiting on a communication kernel) and
    // never Bubble (no other device is busy either).
    auto cfg = config();
    cfg.measuredIterations = 3;
    cfg.resilience.enabled = true;
    cfg.resilience.checkpoint.intervalSec = 0.4;
    auto result = core::Experiment::run(cfg);
    ASSERT_TRUE(result.feasible);
    ASSERT_TRUE(result.goodputValid);
    ASSERT_TRUE(result.trace);

    std::vector<std::pair<double, double>> pauses;
    for (const auto& seg : result.goodput.timeline) {
        if (seg.bucket == resil::Bucket::Checkpoint)
            pauses.emplace_back(seg.startSec, seg.endSec);
    }
    ASSERT_GE(pauses.size(), 2u);

    // No kernel on any device overlaps a checkpoint pause.
    for (const auto& ev : result.trace->all()) {
        for (const auto& [lo, hi] : pauses) {
            EXPECT_FALSE(ev.startSec < hi - 1e-12 &&
                         ev.startSec + ev.durSec > lo + 1e-12)
                << ev.name << " overlaps pause [" << lo << ", " << hi
                << ")";
        }
    }

    // Every GPU spends at least the total pause time in Idle; the
    // pauses land in no other phase.
    double pause_total = 0.0;
    for (const auto& [lo, hi] : pauses)
        pause_total += hi - lo;
    obs::PhaseReport phases = core::phaseReport(result);
    for (const auto& gpu : phases.gpus) {
        double idle =
            gpu.phases[static_cast<std::size_t>(obs::Phase::Idle)]
                .seconds;
        EXPECT_GE(idle, pause_total - 1e-9)
            << "gpu " << gpu.gpu
            << " lost quiescent time to a non-idle phase";
    }
}

} // namespace
