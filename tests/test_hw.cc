/**
 * @file
 * Unit tests for the hardware models: compute roofline, power,
 * RC thermal network with airflow preheat, DVFS governor, and the GPU
 * device aggregate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/calibration.hh"
#include "hw/chassis.hh"
#include "hw/compute_model.hh"
#include "hw/dvfs.hh"
#include "hw/gpu.hh"
#include "hw/gpu_spec.hh"
#include "hw/platform.hh"
#include "hw/thermal_model.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::hw;

// ---- specs -----------------------------------------------------------------

TEST(GpuSpec, Table3Values)
{
    GpuSpec h100 = h100Spec();
    GpuSpec h200 = h200Spec();
    GpuSpec gcd = mi250GcdSpec();

    EXPECT_NEAR(h100.memoryBytes, 80e9, 1e6);
    EXPECT_NEAR(h200.memoryBytes, 141e9, 1e6);
    EXPECT_NEAR(gcd.memoryBytes, 64e9, 1e6);

    // H200 = H100 compute with more/faster memory.
    EXPECT_DOUBLE_EQ(h100.peakFlops, h200.peakFlops);
    EXPECT_GT(h200.hbmBandwidth, h100.hbmBandwidth);

    EXPECT_DOUBLE_EQ(h100.tdpWatts, 700.0);
    EXPECT_DOUBLE_EQ(gcd.tdpWatts, 250.0); // half of the 500 W package
    EXPECT_TRUE(gcd.chipletGcd);
    EXPECT_FALSE(h100.chipletGcd);
}

// ---- compute model ---------------------------------------------------------

TEST(ComputeModel, EfficiencyIncreasesWithWork)
{
    ComputeModel m(h100Spec());
    ComputeWork small{KernelClass::Gemm, 1e10, 0.0};
    ComputeWork large{KernelClass::Gemm, 1e13, 0.0};
    EXPECT_LT(m.efficiency(small), m.efficiency(large));
    EXPECT_LE(m.efficiency(large), calib::kMaxMfu);
}

TEST(ComputeModel, AttentionLessEfficientThanGemm)
{
    ComputeModel m(h100Spec());
    ComputeWork gemm{KernelClass::Gemm, 1e12, 0.0};
    ComputeWork attn{KernelClass::Attention, 1e12, 0.0};
    EXPECT_GT(m.efficiency(gemm), m.efficiency(attn));
}

TEST(ComputeModel, DurationScalesInverselyWithClock)
{
    ComputeModel m(h100Spec());
    ComputeWork w{KernelClass::Gemm, 5e12, 0.0};
    double full = m.duration(w, 1.0);
    double slow = m.duration(w, 0.5);
    // Roughly 2x slower at half clock (launch overhead dilutes a bit).
    EXPECT_GT(slow, 1.8 * full);
}

TEST(ComputeModel, MemoryBoundKernelsIgnoreClock)
{
    ComputeModel m(h100Spec());
    // Tiny flops, huge memory traffic: HBM-bound.
    ComputeWork w{KernelClass::Optimizer, 1e9, 2e12};
    EXPECT_NEAR(m.duration(w, 1.0), m.duration(w, 0.6), 1e-9);
    EXPECT_LT(m.smUtilization(w), 0.2);
}

TEST(ComputeModel, RooflineCrossover)
{
    ComputeModel m(h100Spec());
    // Compute-bound kernel dominated by flop time.
    ComputeWork cb{KernelClass::Gemm, 1e13, 1e9};
    double t = m.duration(cb, 1.0) - calib::kKernelOverheadSec;
    double flop_time = 1e13 / (h100Spec().peakFlops *
                               m.efficiency(cb));
    EXPECT_NEAR(t, flop_time, 1e-9);
    EXPECT_GT(m.smUtilization(cb), 0.9);
}

// ---- DVFS ------------------------------------------------------------------

TEST(Dvfs, ThrottlesWhenHot)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    double before = g.clockRel();
    g.evaluate(spec.throttleTempC + 2.0, 400.0, true);
    EXPECT_LT(g.clockRel(), before);
    EXPECT_EQ(g.lastReason(), ThrottleReason::Thermal);
}

TEST(Dvfs, ThrottlesOnPowerCap)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(50.0, spec.tdpWatts + 50.0, true);
    EXPECT_LT(g.clockRel(), 1.0);
    EXPECT_EQ(g.lastReason(), ThrottleReason::PowerCap);
}

TEST(Dvfs, BoostsWhenCoolAndComputeBound)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 50; ++i)
        g.evaluate(55.0, 500.0, true);
    EXPECT_NEAR(g.clockRel(), spec.boostRel(), 1e-9);
}

TEST(Dvfs, NoBoostWhenCommBound)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 50; ++i)
        g.evaluate(55.0, 300.0, false);
    EXPECT_NEAR(g.clockRel(), 1.0, 1e-9);
}

TEST(Dvfs, RecoversWithHysteresis)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(spec.throttleTempC + 1.0, 400.0, true);
    double throttled = g.clockRel();
    // Just below throttle but inside hysteresis: hold.
    g.evaluate(spec.throttleTempC - 1.0, 400.0, true);
    EXPECT_DOUBLE_EQ(g.clockRel(), throttled);
    // Well below: step back up.
    for (int i = 0; i < 100; ++i)
        g.evaluate(spec.throttleTempC - 10.0, 400.0, false);
    EXPECT_NEAR(g.clockRel(), 1.0, 1e-9);
}

TEST(Dvfs, RecoversInSoftZone)
{
    // Regression: a throttled clock must creep back toward nominal
    // while the temperature sits between the governor setpoint and the
    // hysteresis band. The original soft-zone branch only pulled boost
    // clocks down, so a derated device was stuck there forever.
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(spec.throttleTempC + 2.0, 400.0, true);
    ASSERT_LT(g.clockRel(), 1.0);
    double soft =
        0.5 * (spec.targetTempC +
               (spec.throttleTempC - calib::kThermalHysteresisC));
    ASSERT_GE(soft, spec.targetTempC);
    ASSERT_LT(soft, spec.throttleTempC - calib::kThermalHysteresisC);
    double prev = g.clockRel();
    g.evaluate(soft, 400.0, true);
    EXPECT_GT(g.clockRel(), prev);
    // The residual derate keeps its cause until fully recovered.
    EXPECT_NE(g.lastReason(), ThrottleReason::None);
    for (int i = 0; i < 100; ++i)
        g.evaluate(soft, 400.0, true);
    EXPECT_NEAR(g.clockRel(), 1.0, 1e-9);
    EXPECT_EQ(g.lastReason(), ThrottleReason::None);
}

TEST(Dvfs, ClampedToMinClock)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 200; ++i)
        g.evaluate(spec.throttleTempC + 10.0, 900.0, true);
    EXPECT_NEAR(g.clockRel(), spec.minRel(), 1e-9);
}

// ---- thermal model ---------------------------------------------------------

TEST(Thermal, SteadyStateMatchesAnalytic)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<double> powers(8, 400.0);
    // Integrate long enough to converge.
    for (int i = 0; i < 200000; ++i)
        tm.step(0.002, powers);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(tm.temperature(i), tm.steadyState(i, powers), 0.2);
}

TEST(Thermal, RearGpusHotterThanFront)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<double> powers(8, 600.0);
    tm.warmStart(powers);
    // Even devices sit at the intake, odd ones at the exhaust.
    for (int front = 0; front < 8; front += 2) {
        for (int rear = 1; rear < 8; rear += 2)
            EXPECT_GT(tm.temperature(rear),
                      tm.temperature(front) + 5.0);
    }
}

TEST(Thermal, PreheatProportionalToUpstreamPower)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<double> low(8, 100.0), high(8, 700.0);
    double rise_low = tm.inletTemperature(5, low) - calib::kRoomTempC;
    double rise_high = tm.inletTemperature(5, high) - calib::kRoomTempC;
    EXPECT_NEAR(rise_high / rise_low, 7.0, 1e-9);
}

TEST(Thermal, StepRespondsWithTimeConstant)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<double> powers(8, 0.0);
    powers[0] = 500.0;
    // After one time constant, ~63% of the way to steady state.
    double target = tm.steadyState(0, powers);
    double start = tm.temperature(0);
    int steps = static_cast<int>(calib::kThermalTauSec / 0.001);
    for (int i = 0; i < steps; ++i)
        tm.step(0.001, powers);
    double progress = (tm.temperature(0) - start) / (target - start);
    EXPECT_NEAR(progress, 0.632, 0.02);
}

TEST(Thermal, PackageCouplingPullsGcdsTogether)
{
    ThermalModel tm(mi250Layout(), 1);
    std::vector<double> powers(8, 0.0);
    powers[0] = 250.0; // only GCD 0 busy; GCD 1 idle but same package
    for (int i = 0; i < 60000; ++i)
        tm.step(0.002, powers);
    double hot = tm.temperature(0);
    double peer = tm.temperature(1);
    double far = tm.temperature(2);
    EXPECT_GT(peer, far + 2.0); // peer warmed through the package
    EXPECT_LT(peer, hot);       // but still cooler than the busy GCD
}

TEST(Thermal, Mi250IntraPackageSkew)
{
    // Under uniform load the downstream GCD of each package runs
    // hotter (paper reports 5-10 degC skew).
    ThermalModel tm(mi250Layout(), 1);
    std::vector<double> powers(8, 220.0);
    tm.warmStart(powers);
    for (int i = 0; i < 120000; ++i)
        tm.step(0.002, powers);
    for (int pkg = 0; pkg < 4; ++pkg) {
        double skew = tm.temperature(pkg * 2 + 1) -
                      tm.temperature(pkg * 2);
        EXPECT_GT(skew, 0.5);
        EXPECT_LT(skew, 12.0);
    }
}

TEST(Thermal, MultiNodeIndependence)
{
    ThermalModel tm(hgxLayout(), 2);
    std::vector<double> powers(16, 0.0);
    for (int i = 0; i < 8; ++i)
        powers[i] = 700.0; // node 0 busy, node 1 idle
    tm.warmStart(powers);
    for (int i = 8; i < 16; ++i)
        EXPECT_NEAR(tm.temperature(i), calib::kRoomTempC, 0.5);
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(tm.temperature(i), 60.0);
}

// ---- chassis layouts -------------------------------------------------------

TEST(Chassis, HgxFrontRowHasNoUpstream)
{
    ChassisLayout l = hgxLayout();
    ASSERT_EQ(l.gpusPerNode(), 8);
    for (int i = 0; i < 8; i += 2) {
        EXPECT_TRUE(l.slots[i].upstream.empty());
        EXPECT_EQ(l.slots[i].airflowRow, 0);
    }
    for (int i = 1; i < 8; i += 2) {
        EXPECT_FALSE(l.slots[i].upstream.empty());
        EXPECT_EQ(l.slots[i].airflowRow, 1);
    }
}

TEST(Chassis, Mi250PackagePeersAreSymmetric)
{
    ChassisLayout l = mi250Layout();
    for (int i = 0; i < 8; ++i) {
        int peer = l.slots[i].packagePeer;
        ASSERT_GE(peer, 0);
        EXPECT_EQ(l.slots[peer].packagePeer, i);
    }
}

// ---- Gpu device ------------------------------------------------------------

TEST(Gpu, IdlePowerAtRest)
{
    Gpu gpu(0, h100Spec());
    EXPECT_NEAR(gpu.power(), h100Spec().idleWatts, 1.0);
}

TEST(Gpu, PowerRisesWithComputeKernel)
{
    Gpu gpu(0, h100Spec());
    double idle = gpu.power();
    auto tok = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    EXPECT_GT(gpu.power(), idle + 300.0);
    gpu.kernelEnd(tok, 1.0);
    EXPECT_NEAR(gpu.power(), idle, 1.0);
}

TEST(Gpu, CommKernelsDrawLessThanCompute)
{
    Gpu g1(0, h100Spec()), g2(1, h100Spec());
    auto t1 = g1.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    auto t2 = g2.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(g1.power(), g2.power() + 100.0);
    g1.kernelEnd(t1, 1.0);
    g2.kernelEnd(t2, 1.0);
}

TEST(Gpu, OverlapBurstsAboveSingleActivity)
{
    Gpu gpu(0, h100Spec());
    auto tc = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    double compute_only = gpu.power();
    auto tm = gpu.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(gpu.power(), compute_only);
    EXPECT_LE(gpu.power(),
              hw::calib::kPeakPowerCap * h100Spec().tdpWatts + 1e-9);
    gpu.kernelEnd(tm, 1.0);
    gpu.kernelEnd(tc, 2.0);
}

TEST(Gpu, EnergyIntegratesOverTime)
{
    Gpu gpu(0, h100Spec());
    auto tok = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    double p = gpu.power();
    gpu.kernelEnd(tok, 2.0);
    EXPECT_NEAR(gpu.energyJoules(), p * 2.0, 1e-6);
}

TEST(Gpu, ThrottleRatioTracksClock)
{
    Gpu gpu(0, h100Spec());
    // Force a thermal excursion above the throttle point.
    gpu.thermalUpdate(90.0, 0.0);
    EXPECT_LT(gpu.clockRel(), 1.0);
    gpu.thermalUpdate(90.0, 1.0);
    gpu.finishStats(2.0);
    EXPECT_GT(gpu.throttleRatio(), 0.4);
}

TEST(Gpu, OccupancyHighForCommLowWarps)
{
    Gpu gpu(0, h100Spec());
    auto tok = gpu.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(gpu.occupancy(), 0.8);
    EXPECT_LT(gpu.warpsPerSm(), 5.0);
    gpu.kernelEnd(tok, 1.0);
    auto tok2 = gpu.kernelBegin(KernelClass::Gemm, 1.0, 1.0);
    EXPECT_GT(gpu.warpsPerSm(), 5.0);
    EXPECT_GT(gpu.threadblocks(), 500.0);
    gpu.kernelEnd(tok2, 2.0);
}

TEST(Gpu, TrafficCountersAccumulate)
{
    Gpu gpu(0, h100Spec());
    gpu.addTraffic(TrafficClass::Pcie, 1e9);
    gpu.addTraffic(TrafficClass::Pcie, 2e9);
    gpu.addTraffic(TrafficClass::NvLink, 5e9);
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::Pcie), 3e9);
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::NvLink), 5e9);
    gpu.resetStats(1.0);
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::Pcie), 0.0);
}

// ---- platform integration --------------------------------------------------

TEST(Gpu, SlowdownScalesClockAndReportsFault)
{
    Gpu gpu(0, h100Spec());
    double nominal = gpu.clockGhz();
    EXPECT_TRUE(gpu.setSlowdown(0.5, 0.0));
    EXPECT_NEAR(gpu.clockGhz(), 0.5 * nominal, 1e-9);
    EXPECT_EQ(gpu.throttleReason(), ThrottleReason::Fault);
    EXPECT_FALSE(gpu.setSlowdown(0.5, 0.0)); // no-op, same factor
    EXPECT_TRUE(gpu.setSlowdown(1.0, 0.0));
    EXPECT_NEAR(gpu.clockGhz(), nominal, 1e-9);
    EXPECT_EQ(gpu.throttleReason(), ThrottleReason::None);
}

TEST(Platform, BusyGpusHeatUpAndEventuallyThrottle)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 1);
    plat.start();
    // Pin all GPUs at full compute activity for 60 simulated seconds.
    std::vector<std::uint64_t> toks;
    for (int i = 0; i < plat.numGpus(); ++i)
        toks.push_back(plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0,
                                               0.0));
    s.schedule(sim::toTicks(60.0), [] {});
    s.run();
    // Rear GPUs (odd ids) should run hotter than front (even ids).
    double front = plat.gpu(0).temperature();
    double rear = plat.gpu(1).temperature();
    EXPECT_GT(rear, front + 5.0);
    // Rear GPUs heavily loaded at 700 W-class power hit throttle.
    EXPECT_GT(rear, h100Spec().targetTempC - 10.0);
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelEnd(toks[static_cast<std::size_t>(i)],
                              s.nowSeconds());
}

TEST(Platform, NodePowerCapForcesThrottle)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 2);
    plat.start();
    plat.capNodePower(1, 300.0); // node-level power fault
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    s.schedule(sim::toTicks(10.0), [] {});
    s.run();
    // Node 1 GPUs should be clocked below node 0 GPUs.
    EXPECT_LT(plat.gpu(8).clockRel() + 0.05, plat.gpu(0).clockRel());
}

TEST(Platform, ClockListenerFires)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 1);
    int changes = 0;
    plat.setClockListener([&](int, double) { ++changes; });
    plat.start();
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    s.schedule(sim::toTicks(30.0), [] {});
    s.run();
    EXPECT_GT(changes, 0);
}

} // namespace
