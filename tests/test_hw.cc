/**
 * @file
 * Unit tests for the hardware models: compute roofline, power,
 * RC thermal network with airflow preheat, DVFS governor, and the GPU
 * device aggregate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/calibration.hh"
#include "hw/chassis.hh"
#include "hw/compute_model.hh"
#include "hw/dvfs.hh"
#include "hw/gpu.hh"
#include "hw/gpu_spec.hh"
#include "hw/platform.hh"
#include "hw/thermal_model.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::hw;
using namespace charllm::unit_literals;

// ---- specs -----------------------------------------------------------------

TEST(GpuSpec, Table3Values)
{
    GpuSpec h100 = h100Spec();
    GpuSpec h200 = h200Spec();
    GpuSpec gcd = mi250GcdSpec();

    EXPECT_NEAR(h100.memoryBytes.value(), 80e9, 1e6);
    EXPECT_NEAR(h200.memoryBytes.value(), 141e9, 1e6);
    EXPECT_NEAR(gcd.memoryBytes.value(), 64e9, 1e6);

    // H200 = H100 compute with more/faster memory.
    EXPECT_DOUBLE_EQ(h100.peakFlops.value(), h200.peakFlops.value());
    EXPECT_GT(h200.hbmBandwidth, h100.hbmBandwidth);

    EXPECT_DOUBLE_EQ(h100.tdpWatts.value(), 700.0);
    // Half of the 500 W package.
    EXPECT_DOUBLE_EQ(gcd.tdpWatts.value(), 250.0);
    EXPECT_TRUE(gcd.chipletGcd);
    EXPECT_FALSE(h100.chipletGcd);
}

// ---- compute model ---------------------------------------------------------

TEST(ComputeModel, EfficiencyIncreasesWithWork)
{
    ComputeModel m(h100Spec());
    ComputeWork small{KernelClass::Gemm, Flops(1e10), Bytes(0.0)};
    ComputeWork large{KernelClass::Gemm, Flops(1e13), Bytes(0.0)};
    EXPECT_LT(m.efficiency(small), m.efficiency(large));
    EXPECT_LE(m.efficiency(large), calib::kMaxMfu);
}

TEST(ComputeModel, AttentionLessEfficientThanGemm)
{
    ComputeModel m(h100Spec());
    ComputeWork gemm{KernelClass::Gemm, Flops(1e12), Bytes(0.0)};
    ComputeWork attn{KernelClass::Attention, Flops(1e12), Bytes(0.0)};
    EXPECT_GT(m.efficiency(gemm), m.efficiency(attn));
}

TEST(ComputeModel, DurationScalesInverselyWithClock)
{
    ComputeModel m(h100Spec());
    ComputeWork w{KernelClass::Gemm, Flops(5e12), Bytes(0.0)};
    double full = m.duration(w, ClockRel(1.0)).value();
    double slow = m.duration(w, ClockRel(0.5)).value();
    // Roughly 2x slower at half clock (launch overhead dilutes a bit).
    EXPECT_GT(slow, 1.8 * full);
}

TEST(ComputeModel, MemoryBoundKernelsIgnoreClock)
{
    ComputeModel m(h100Spec());
    // Tiny flops, huge memory traffic: HBM-bound.
    ComputeWork w{KernelClass::Optimizer, Flops(1e9), Bytes(2e12)};
    EXPECT_NEAR(m.duration(w, ClockRel(1.0)).value(),
                m.duration(w, ClockRel(0.6)).value(), 1e-9);
    EXPECT_LT(m.smUtilization(w), 0.2);
}

TEST(ComputeModel, RooflineCrossover)
{
    ComputeModel m(h100Spec());
    // Compute-bound kernel dominated by flop time.
    ComputeWork cb{KernelClass::Gemm, Flops(1e13), Bytes(1e9)};
    double t =
        m.duration(cb, ClockRel(1.0)).value() - calib::kKernelOverheadSec;
    double flop_time = 1e13 / (h100Spec().peakFlops.value() *
                               m.efficiency(cb));
    EXPECT_NEAR(t, flop_time, 1e-9);
    EXPECT_GT(m.smUtilization(cb), 0.9);
}

// ---- DVFS ------------------------------------------------------------------

TEST(Dvfs, ThrottlesWhenHot)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    double before = g.clockRel().value();
    g.evaluate(spec.throttleTempC + 2.0_dC, 400.0_W, true);
    EXPECT_LT(g.clockRel().value(), before);
    EXPECT_EQ(g.lastReason(), ThrottleReason::Thermal);
}

TEST(Dvfs, ThrottlesOnPowerCap)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(Celsius(50.0), spec.tdpWatts + 50.0_W, true);
    EXPECT_LT(g.clockRel().value(), 1.0);
    EXPECT_EQ(g.lastReason(), ThrottleReason::PowerCap);
}

TEST(Dvfs, BoostsWhenCoolAndComputeBound)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 50; ++i)
        g.evaluate(Celsius(55.0), 500.0_W, true);
    EXPECT_NEAR(g.clockRel().value(), spec.boostRel().value(), 1e-9);
}

TEST(Dvfs, NoBoostWhenCommBound)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 50; ++i)
        g.evaluate(Celsius(55.0), 300.0_W, false);
    EXPECT_NEAR(g.clockRel().value(), 1.0, 1e-9);
}

TEST(Dvfs, RecoversWithHysteresis)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(spec.throttleTempC + 1.0_dC, 400.0_W, true);
    double throttled = g.clockRel().value();
    // Just below throttle but inside hysteresis: hold.
    g.evaluate(spec.throttleTempC - 1.0_dC, 400.0_W, true);
    EXPECT_DOUBLE_EQ(g.clockRel().value(), throttled);
    // Well below: step back up.
    for (int i = 0; i < 100; ++i)
        g.evaluate(spec.throttleTempC - 10.0_dC, 400.0_W, false);
    EXPECT_NEAR(g.clockRel().value(), 1.0, 1e-9);
}

TEST(Dvfs, RecoversInSoftZone)
{
    // Regression: a throttled clock must creep back toward nominal
    // while the temperature sits between the governor setpoint and the
    // hysteresis band. The original soft-zone branch only pulled boost
    // clocks down, so a derated device was stuck there forever.
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    g.evaluate(spec.throttleTempC + 2.0_dC, 400.0_W, true);
    ASSERT_LT(g.clockRel().value(), 1.0);
    double soft =
        0.5 * (spec.targetTempC.value() +
               (spec.throttleTempC.value() - calib::kThermalHysteresisC));
    ASSERT_GE(soft, spec.targetTempC.value());
    ASSERT_LT(soft,
              spec.throttleTempC.value() - calib::kThermalHysteresisC);
    double prev = g.clockRel().value();
    g.evaluate(Celsius(soft), 400.0_W, true);
    EXPECT_GT(g.clockRel().value(), prev);
    // The residual derate keeps its cause until fully recovered.
    EXPECT_NE(g.lastReason(), ThrottleReason::None);
    for (int i = 0; i < 100; ++i)
        g.evaluate(Celsius(soft), 400.0_W, true);
    EXPECT_NEAR(g.clockRel().value(), 1.0, 1e-9);
    EXPECT_EQ(g.lastReason(), ThrottleReason::None);
}

TEST(Dvfs, ClampedToMinClock)
{
    GpuSpec spec = h100Spec();
    DvfsGovernor g(spec);
    for (int i = 0; i < 200; ++i)
        g.evaluate(spec.throttleTempC + 10.0_dC, 900.0_W, true);
    EXPECT_NEAR(g.clockRel().value(), spec.minRel().value(), 1e-9);
}

// ---- thermal model ---------------------------------------------------------

TEST(Thermal, SteadyStateMatchesAnalytic)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<Watts> powers(8, 400.0_W);
    // Integrate long enough to converge.
    for (int i = 0; i < 200000; ++i)
        tm.step(Seconds(0.002), powers);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(tm.temperature(i).value(),
                    tm.steadyState(i, powers).value(), 0.2);
}

TEST(Thermal, RearGpusHotterThanFront)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<Watts> powers(8, 600.0_W);
    tm.warmStart(powers);
    // Even devices sit at the intake, odd ones at the exhaust.
    for (int front = 0; front < 8; front += 2) {
        for (int rear = 1; rear < 8; rear += 2)
            EXPECT_GT(tm.temperature(rear).value(),
                      tm.temperature(front).value() + 5.0);
    }
}

TEST(Thermal, PreheatProportionalToUpstreamPower)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<Watts> low(8, 100.0_W), high(8, 700.0_W);
    double rise_low =
        tm.inletTemperature(5, low).value() - calib::kRoomTempC;
    double rise_high =
        tm.inletTemperature(5, high).value() - calib::kRoomTempC;
    EXPECT_NEAR(rise_high / rise_low, 7.0, 1e-9);
}

TEST(Thermal, StepRespondsWithTimeConstant)
{
    ThermalModel tm(hgxLayout(), 1);
    std::vector<Watts> powers(8, 0.0_W);
    powers[0] = 500.0_W;
    // After one time constant, ~63% of the way to steady state.
    double target = tm.steadyState(0, powers).value();
    double start = tm.temperature(0).value();
    int steps = static_cast<int>(calib::kThermalTauSec / 0.001);
    for (int i = 0; i < steps; ++i)
        tm.step(Seconds(0.001), powers);
    double progress =
        (tm.temperature(0).value() - start) / (target - start);
    EXPECT_NEAR(progress, 0.632, 0.02);
}

TEST(Thermal, PackageCouplingPullsGcdsTogether)
{
    ThermalModel tm(mi250Layout(), 1);
    std::vector<Watts> powers(8, 0.0_W);
    powers[0] = 250.0_W; // only GCD 0 busy; GCD 1 idle, same package
    for (int i = 0; i < 60000; ++i)
        tm.step(Seconds(0.002), powers);
    double hot = tm.temperature(0).value();
    double peer = tm.temperature(1).value();
    double far = tm.temperature(2).value();
    EXPECT_GT(peer, far + 2.0); // peer warmed through the package
    EXPECT_LT(peer, hot);       // but still cooler than the busy GCD
}

TEST(Thermal, Mi250IntraPackageSkew)
{
    // Under uniform load the downstream GCD of each package runs
    // hotter (paper reports 5-10 degC skew).
    ThermalModel tm(mi250Layout(), 1);
    std::vector<Watts> powers(8, 220.0_W);
    tm.warmStart(powers);
    for (int i = 0; i < 120000; ++i)
        tm.step(Seconds(0.002), powers);
    for (int pkg = 0; pkg < 4; ++pkg) {
        double skew = (tm.temperature(pkg * 2 + 1) -
                       tm.temperature(pkg * 2))
                          .value();
        EXPECT_GT(skew, 0.5);
        EXPECT_LT(skew, 12.0);
    }
}

TEST(Thermal, MultiNodeIndependence)
{
    ThermalModel tm(hgxLayout(), 2);
    std::vector<Watts> powers(16, 0.0_W);
    for (int i = 0; i < 8; ++i)
        powers[i] = 700.0_W; // node 0 busy, node 1 idle
    tm.warmStart(powers);
    for (int i = 8; i < 16; ++i)
        EXPECT_NEAR(tm.temperature(i).value(), calib::kRoomTempC, 0.5);
    for (int i = 0; i < 8; ++i)
        EXPECT_GT(tm.temperature(i).value(), 60.0);
}

// ---- chassis layouts -------------------------------------------------------

TEST(Chassis, HgxFrontRowHasNoUpstream)
{
    ChassisLayout l = hgxLayout();
    ASSERT_EQ(l.gpusPerNode(), 8);
    for (int i = 0; i < 8; i += 2) {
        EXPECT_TRUE(l.slots[i].upstream.empty());
        EXPECT_EQ(l.slots[i].airflowRow, 0);
    }
    for (int i = 1; i < 8; i += 2) {
        EXPECT_FALSE(l.slots[i].upstream.empty());
        EXPECT_EQ(l.slots[i].airflowRow, 1);
    }
}

TEST(Chassis, Mi250PackagePeersAreSymmetric)
{
    ChassisLayout l = mi250Layout();
    for (int i = 0; i < 8; ++i) {
        int peer = l.slots[i].packagePeer;
        ASSERT_GE(peer, 0);
        EXPECT_EQ(l.slots[peer].packagePeer, i);
    }
}

// ---- Gpu device ------------------------------------------------------------

TEST(Gpu, IdlePowerAtRest)
{
    Gpu gpu(0, h100Spec());
    EXPECT_NEAR(gpu.power().value(), h100Spec().idleWatts.value(), 1.0);
}

TEST(Gpu, PowerRisesWithComputeKernel)
{
    Gpu gpu(0, h100Spec());
    double idle = gpu.power().value();
    auto tok = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    EXPECT_GT(gpu.power().value(), idle + 300.0);
    gpu.kernelEnd(tok, 1.0);
    EXPECT_NEAR(gpu.power().value(), idle, 1.0);
}

TEST(Gpu, CommKernelsDrawLessThanCompute)
{
    Gpu g1(0, h100Spec()), g2(1, h100Spec());
    auto t1 = g1.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    auto t2 = g2.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(g1.power().value(), g2.power().value() + 100.0);
    g1.kernelEnd(t1, 1.0);
    g2.kernelEnd(t2, 1.0);
}

TEST(Gpu, OverlapBurstsAboveSingleActivity)
{
    Gpu gpu(0, h100Spec());
    auto tc = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    double compute_only = gpu.power().value();
    auto tm = gpu.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(gpu.power().value(), compute_only);
    EXPECT_LE(gpu.power().value(),
              hw::calib::kPeakPowerCap * h100Spec().tdpWatts.value() +
                  1e-9);
    gpu.kernelEnd(tm, 1.0);
    gpu.kernelEnd(tc, 2.0);
}

TEST(Gpu, EnergyIntegratesOverTime)
{
    Gpu gpu(0, h100Spec());
    auto tok = gpu.kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    double p = gpu.power().value();
    gpu.kernelEnd(tok, 2.0);
    EXPECT_NEAR(gpu.energyJoules().value(), p * 2.0, 1e-6);
}

TEST(Gpu, ThrottleRatioTracksClock)
{
    Gpu gpu(0, h100Spec());
    // Force a thermal excursion above the throttle point.
    gpu.thermalUpdate(Celsius(90.0), 0.0);
    EXPECT_LT(gpu.clockRel().value(), 1.0);
    gpu.thermalUpdate(Celsius(90.0), 1.0);
    gpu.finishStats(2.0);
    EXPECT_GT(gpu.throttleRatio(), 0.4);
}

TEST(Gpu, OccupancyHighForCommLowWarps)
{
    Gpu gpu(0, h100Spec());
    auto tok = gpu.kernelBegin(KernelClass::AllReduce, 0.0, 0.0);
    EXPECT_GT(gpu.occupancy(), 0.8);
    EXPECT_LT(gpu.warpsPerSm(), 5.0);
    gpu.kernelEnd(tok, 1.0);
    auto tok2 = gpu.kernelBegin(KernelClass::Gemm, 1.0, 1.0);
    EXPECT_GT(gpu.warpsPerSm(), 5.0);
    EXPECT_GT(gpu.threadblocks(), 500.0);
    gpu.kernelEnd(tok2, 2.0);
}

TEST(Gpu, TrafficCountersAccumulate)
{
    Gpu gpu(0, h100Spec());
    gpu.addTraffic(TrafficClass::Pcie, Bytes(1e9));
    gpu.addTraffic(TrafficClass::Pcie, Bytes(2e9));
    gpu.addTraffic(TrafficClass::NvLink, Bytes(5e9));
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::Pcie).value(), 3e9);
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::NvLink).value(),
                     5e9);
    gpu.resetStats(1.0);
    EXPECT_DOUBLE_EQ(gpu.trafficBytes(TrafficClass::Pcie).value(), 0.0);
}

// ---- platform integration --------------------------------------------------

TEST(Gpu, SlowdownScalesClockAndReportsFault)
{
    Gpu gpu(0, h100Spec());
    double nominal = gpu.clockGhz();
    EXPECT_TRUE(gpu.setSlowdown(0.5, 0.0));
    EXPECT_NEAR(gpu.clockGhz(), 0.5 * nominal, 1e-9);
    EXPECT_EQ(gpu.throttleReason(), ThrottleReason::Fault);
    EXPECT_FALSE(gpu.setSlowdown(0.5, 0.0)); // no-op, same factor
    EXPECT_TRUE(gpu.setSlowdown(1.0, 0.0));
    EXPECT_NEAR(gpu.clockGhz(), nominal, 1e-9);
    EXPECT_EQ(gpu.throttleReason(), ThrottleReason::None);
}

TEST(Platform, BusyGpusHeatUpAndEventuallyThrottle)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 1);
    plat.start();
    // Pin all GPUs at full compute activity for 60 simulated seconds.
    std::vector<std::uint64_t> toks;
    for (int i = 0; i < plat.numGpus(); ++i)
        toks.push_back(plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0,
                                               0.0));
    s.schedule(sim::toTicks(60.0), [] {});
    s.run();
    // Rear GPUs (odd ids) should run hotter than front (even ids).
    double front = plat.gpu(0).temperature().value();
    double rear = plat.gpu(1).temperature().value();
    EXPECT_GT(rear, front + 5.0);
    // Rear GPUs heavily loaded at 700 W-class power hit throttle.
    EXPECT_GT(rear, h100Spec().targetTempC.value() - 10.0);
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelEnd(toks[static_cast<std::size_t>(i)],
                              s.nowSeconds());
}

TEST(Platform, NodePowerCapForcesThrottle)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 2);
    plat.start();
    plat.capNodePower(1, 300.0_W); // node-level power fault
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    s.schedule(sim::toTicks(10.0), [] {});
    s.run();
    // Node 1 GPUs should be clocked below node 0 GPUs.
    EXPECT_LT(plat.gpu(8).clockRel().value() + 0.05,
              plat.gpu(0).clockRel().value());
}

TEST(Platform, ClockListenerFires)
{
    sim::Simulator s;
    Platform plat(s, h100Spec(), hgxLayout(), 1);
    int changes = 0;
    plat.setClockListener([&](int, ClockRel) { ++changes; });
    plat.start();
    for (int i = 0; i < plat.numGpus(); ++i)
        plat.gpu(i).kernelBegin(KernelClass::Gemm, 1.0, 0.0);
    s.schedule(sim::toTicks(30.0), [] {});
    s.run();
    EXPECT_GT(changes, 0);
}

} // namespace
