/**
 * @file
 * Tests for collective algorithms: wire-volume accounting, locality
 * effects (intra- vs inter-node groups), chunking penalties, and
 * agreement with the analytic cost models.
 */

#include <gtest/gtest.h>

#include "coll/collective_engine.hh"
#include "coll/cost_model.hh"
#include "net/calibration.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::coll;

struct CollFixture : ::testing::Test
{
    sim::Simulator sim;

    double
    runCollective(net::FlowNetwork& netw, CollectiveKind kind,
                  std::vector<int> ranks, double bytes,
                  bool chunked = true)
    {
        CollectiveEngine eng(sim, netw);
        double done = -1.0;
        CollectiveRequest req;
        req.kind = kind;
        req.ranks = std::move(ranks);
        req.bytes = Bytes(bytes);
        req.chunked = chunked;
        req.onComplete = [&] { done = sim.nowSeconds(); };
        eng.run(std::move(req));
        sim.run();
        return done;
    }
};

// ---- cost model -------------------------------------------------------------

TEST(CostModel, RingAllReduceFactor)
{
    // Classic 2(n-1)/n wire volume: for large n the bandwidth term
    // approaches 2*bytes/bw.
    double t8 = ringAllReduceSeconds(8, Bytes(1e9), BytesPerSec(1e9),
                                     Seconds(0.0))
                    .value();
    EXPECT_NEAR(t8, 2.0 * (7.0 / 8.0), 1e-9);
    double t2 = ringAllReduceSeconds(2, Bytes(1e9), BytesPerSec(1e9),
                                     Seconds(0.0))
                    .value();
    EXPECT_NEAR(t2, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(ringAllReduceSeconds(1, Bytes(1e9), BytesPerSec(1e9),
                                          Seconds(1e-6))
                         .value(),
                     0.0);
}

TEST(CostModel, LatencyTermScalesWithSteps)
{
    double no_lat = ringAllReduceSeconds(16, Bytes(1e6),
                                         BytesPerSec(1e12), Seconds(0.0))
                        .value();
    double with_lat = ringAllReduceSeconds(16, Bytes(1e6),
                                           BytesPerSec(1e12),
                                           Seconds(1e-5))
                          .value();
    EXPECT_NEAR(with_lat - no_lat, 30.0 * 1e-5, 1e-12);
}

TEST(CostModel, AllGatherHalfOfAllReduce)
{
    double ar = ringAllReduceSeconds(8, Bytes(1e9), BytesPerSec(1e9),
                                     Seconds(0.0))
                    .value();
    double ag = ringAllGatherSeconds(8, Bytes(1e9), BytesPerSec(1e9),
                                     Seconds(0.0))
                    .value();
    EXPECT_NEAR(ar, 2.0 * ag, 1e-9);
}

TEST(CostModel, AllToAllMonotonicInSize)
{
    EXPECT_LT(allToAllSeconds(8, Bytes(1e8), BytesPerSec(1e9),
                              Seconds(1e-5))
                  .value(),
              allToAllSeconds(8, Bytes(1e9), BytesPerSec(1e9),
                              Seconds(1e-5))
                  .value());
}

// ---- wire volume ------------------------------------------------------------

TEST(WireVolume, MatchesAlgorithmFactors)
{
    CollectiveRequest req;
    req.bytes = Bytes(8e9);
    req.ranks = {0, 1, 2, 3, 4, 5, 6, 7};
    req.kind = CollectiveKind::AllReduce;
    EXPECT_NEAR(CollectiveEngine::wireBytesPerRank(req).value(),
                2.0 * 8e9 * 7.0 / 8.0, 1.0);
    req.kind = CollectiveKind::AllGather;
    EXPECT_NEAR(CollectiveEngine::wireBytesPerRank(req).value(),
                8e9 * 7.0 / 8.0, 1.0);
    req.kind = CollectiveKind::AllToAll;
    EXPECT_NEAR(CollectiveEngine::wireBytesPerRank(req).value(),
                8e9 * 7.0 / 8.0, 1.0);
    req.ranks = {3};
    EXPECT_DOUBLE_EQ(CollectiveEngine::wireBytesPerRank(req).value(),
                     0.0);
}

// ---- flow execution ---------------------------------------------------------

TEST_F(CollFixture, IntraNodeAllReduceMatchesAnalytic)
{
    net::Topology topo(net::Topology::hgxParams(1));
    net::FlowNetwork netw(sim, topo);
    double bytes = 1e9;
    double t = runCollective(netw, CollectiveKind::AllReduce,
                             {0, 1, 2, 3, 4, 5, 6, 7}, bytes);
    double analytic =
        ringAllReduceSeconds(
            8, Bytes(bytes),
            topo.params().nvlinkBw * net::calib::kProtocolEfficiency,
            topo.params().intraLatency)
            .value();
    EXPECT_NEAR(t, analytic, analytic * 0.05);
}

TEST_F(CollFixture, CrossNodeAllReduceBottleneckedByNic)
{
    net::Topology topo(net::Topology::hgxParams(2));
    net::FlowNetwork netw(sim, topo);
    double bytes = 1e8;
    // Group spanning both nodes: ring crosses the NIC twice.
    double cross = runCollective(
        netw, CollectiveKind::AllReduce,
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, bytes);
    sim::Simulator sim2;
    net::FlowNetwork netw2(sim2, topo);
    CollectiveEngine eng2(sim2, netw2);
    double intra = -1.0;
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.ranks = {0, 1, 2, 3, 4, 5, 6, 7};
    req.bytes = Bytes(bytes);
    req.onComplete = [&] { intra = sim2.nowSeconds(); };
    eng2.run(std::move(req));
    sim2.run();
    // NIC (12.5 GB/s) vs NVLink (450 GB/s): cross-node much slower.
    EXPECT_GT(cross, 5.0 * intra);
}

TEST_F(CollFixture, AllToAllLocalityAdvantage)
{
    // EP8 confined within one node vs spanning two nodes: the paper's
    // key locality result for expert parallelism (Sec. 4.2).
    net::Topology topo(net::Topology::hgxParams(2));
    net::FlowNetwork netw(sim, topo);
    double bytes = 2e8;
    double local = runCollective(netw, CollectiveKind::AllToAll,
                                 {0, 1, 2, 3, 4, 5, 6, 7}, bytes);
    sim::Simulator sim2;
    net::FlowNetwork netw2(sim2, topo);
    CollectiveEngine eng2(sim2, netw2);
    double spread = -1.0;
    CollectiveRequest req;
    req.kind = CollectiveKind::AllToAll;
    req.ranks = {0, 1, 2, 3, 8, 9, 10, 11}; // half on each node
    req.bytes = Bytes(bytes);
    req.onComplete = [&] { spread = sim2.nowSeconds(); };
    eng2.run(std::move(req));
    sim2.run();
    EXPECT_GT(spread, 3.0 * local);
}

TEST_F(CollFixture, SendRecvUnchunkedPaysHandshake)
{
    net::Topology topo(net::Topology::hgxParams(2));
    net::FlowNetwork netw(sim, topo);
    double chunked = runCollective(netw, CollectiveKind::SendRecv,
                                   {0, 8}, 1e6, true);
    sim::Simulator sim2;
    net::FlowNetwork netw2(sim2, topo);
    CollectiveEngine eng2(sim2, netw2);
    double unchunked = -1.0;
    CollectiveRequest req;
    req.kind = CollectiveKind::SendRecv;
    req.ranks = {0, 8};
    req.bytes = Bytes(1e6);
    req.chunked = false;
    req.onComplete = [&] { unchunked = sim2.nowSeconds(); };
    eng2.run(std::move(req));
    sim2.run();
    EXPECT_NEAR(unchunked - chunked,
                net::calib::kUnchunkedHandshakeSec, 1e-6);
}

TEST_F(CollFixture, BarrierCompletesQuickly)
{
    net::Topology topo(net::Topology::hgxParams(1));
    net::FlowNetwork netw(sim, topo);
    double t = runCollective(netw, CollectiveKind::Barrier,
                             {0, 1, 2, 3}, 0.0);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1e-3);
}

TEST_F(CollFixture, SingleRankGroupCompletes)
{
    net::Topology topo(net::Topology::hgxParams(1));
    net::FlowNetwork netw(sim, topo);
    double t = runCollective(netw, CollectiveKind::AllReduce, {5}, 1e9);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 1e-3);
}

TEST_F(CollFixture, ConcurrentCollectivesContend)
{
    // Two TP groups on the same node: both complete, slower than solo.
    net::Topology topo(net::Topology::hgxParams(1));
    double bytes = 1e9;
    double solo = runCollective(
        *std::make_unique<net::FlowNetwork>(sim, topo).get(),
        CollectiveKind::AllReduce, {0, 1, 2, 3}, bytes);

    sim::Simulator sim2;
    net::FlowNetwork netw2(sim2, topo);
    CollectiveEngine eng2(sim2, netw2);
    int done = 0;
    double t_last = 0.0;
    for (int g = 0; g < 2; ++g) {
        CollectiveRequest req;
        req.kind = CollectiveKind::AllReduce;
        req.ranks = {g * 4 + 0, g * 4 + 1, g * 4 + 2, g * 4 + 3};
        req.bytes = Bytes(bytes);
        req.onComplete = [&] {
            ++done;
            t_last = sim2.nowSeconds();
        };
        eng2.run(std::move(req));
    }
    sim2.run();
    EXPECT_EQ(done, 2);
    // Disjoint rings on an NVSwitch fabric: no shared links, so no
    // slowdown (dedicated port links per GPU).
    EXPECT_NEAR(t_last, solo, solo * 0.05);
}

TEST_F(CollFixture, LargerGroupsMoveMoreTotalBytes)
{
    net::Topology topo(net::Topology::hgxParams(1));
    net::FlowNetwork netw(sim, topo);
    runCollective(netw, CollectiveKind::AllReduce, {0, 1, 2, 3, 4, 5, 6,
                                                    7},
                  1e9);
    double total = 0.0;
    for (int l = 0; l < static_cast<int>(topo.links().size()); ++l)
        total += netw.linkBytes(l).value();
    // 8 flows x wire bytes x 2 links each.
    double expected = 8.0 * (2.0 * 1e9 * 7.0 / 8.0) * 2.0;
    EXPECT_NEAR(total, expected, expected * 0.01);
}


TEST_F(CollFixture, HierarchicalAllReduceBeatsFlatAcrossNodes)
{
    // Topology-aware execution (paper Sec. 4.2 recommendation): a
    // 16-rank group spanning two nodes keeps most wire volume on
    // NVLink and only the reduced shards cross the NIC.
    net::Topology topo(net::Topology::hgxParams(2));
    double bytes = 2e9;
    std::vector<int> ranks(16);
    for (int i = 0; i < 16; ++i)
        ranks[static_cast<std::size_t>(i)] = i;

    net::FlowNetwork flat_net(sim, topo);
    double flat = runCollective(flat_net, CollectiveKind::AllReduce,
                                ranks, bytes);

    sim::Simulator sim2;
    net::FlowNetwork hier_net(sim2, topo);
    CollectiveEngine eng(sim2, hier_net);
    double hier = -1.0;
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.ranks = ranks;
    req.bytes = Bytes(bytes);
    req.topologyAware = true;
    req.onComplete = [&] { hier = sim2.nowSeconds(); };
    eng.run(std::move(req));
    sim2.run();
    ASSERT_GT(hier, 0.0);
    EXPECT_LT(hier, flat * 0.75);
}

TEST_F(CollFixture, HierarchicalFallsBackForIntraNodeGroup)
{
    // A group confined to one node gains nothing; the request must
    // still complete with identical semantics.
    net::Topology topo(net::Topology::hgxParams(2));
    net::FlowNetwork netw(sim, topo);
    CollectiveEngine eng(sim, netw);
    double t_aware = -1.0;
    CollectiveRequest req;
    req.kind = CollectiveKind::AllReduce;
    req.ranks = {0, 1, 2, 3, 4, 5, 6, 7};
    req.bytes = Bytes(1e9);
    req.topologyAware = true;
    req.onComplete = [&] { t_aware = sim.nowSeconds(); };
    eng.run(std::move(req));
    sim.run();
    sim::Simulator sim2;
    net::FlowNetwork netw2(sim2, topo);
    double t_flat = -1.0;
    CollectiveRequest req2;
    req2.kind = CollectiveKind::AllReduce;
    req2.ranks = {0, 1, 2, 3, 4, 5, 6, 7};
    req2.bytes = Bytes(1e9);
    req2.onComplete = [&] { t_flat = sim2.nowSeconds(); };
    CollectiveEngine eng2(sim2, netw2);
    eng2.run(std::move(req2));
    sim2.run();
    EXPECT_NEAR(t_aware, t_flat, t_flat * 0.01);
}

TEST_F(CollFixture, HierarchicalAllGatherAndReduceScatterComplete)
{
    net::Topology topo(net::Topology::hgxParams(2));
    std::vector<int> ranks;
    for (int i = 0; i < 16; ++i)
        ranks.push_back(i);
    for (auto kind : {CollectiveKind::AllGather,
                      CollectiveKind::ReduceScatter}) {
        sim::Simulator s;
        net::FlowNetwork netw(s, topo);
        CollectiveEngine eng(s, netw);
        double done = -1.0;
        CollectiveRequest req;
        req.kind = kind;
        req.ranks = ranks;
        req.bytes = Bytes(5e8);
        req.topologyAware = true;
        req.onComplete = [&] { done = s.nowSeconds(); };
        eng.run(std::move(req));
        s.run();
        EXPECT_GT(done, 0.0) << collectiveKindName(kind);
    }
}

} // namespace
