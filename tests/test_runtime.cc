/**
 * @file
 * Tests for the runtime: program construction (1F1B structure,
 * optimization toggles, FSDP/MoE/LoRA emission) and end-to-end engine
 * behaviour on a small model (determinism, recompute and overlap
 * effects, pipeline bubbles, straggler propagation).
 */

#include <gtest/gtest.h>

#include <set>

#include "coll/collective_engine.hh"
#include "core/cluster.hh"
#include "hw/platform.hh"
#include "net/flow_network.hh"
#include "runtime/engine.hh"
#include "runtime/program_builder.hh"
#include "sim/simulator.hh"

namespace {

using namespace charllm;
using namespace charllm::runtime;

/** Small, fast model for engine tests. */
model::TransformerConfig
tinyModel()
{
    model::TransformerConfig c;
    c.name = "Tiny-1B";
    c.numLayers = 8;
    c.hiddenSize = 2048;
    c.numHeads = 16;
    c.numQueryGroups = 16;
    c.ffnHiddenSize = 8192;
    c.vocabSize = 32000;
    c.seqLength = 1024;
    return c;
}

model::TransformerConfig
tinyMoe()
{
    model::TransformerConfig c = tinyModel();
    c.name = "Tiny-MoE";
    c.numExperts = 8;
    c.topK = 2;
    return c;
}

int
countOps(const Program& p, OpType type)
{
    int n = 0;
    for (const auto& ops : p.deviceOps) {
        for (const auto& op : ops) {
            if (op.type == type)
                ++n;
        }
    }
    return n;
}

int
countClass(const Program& p, hw::KernelClass cls)
{
    int n = 0;
    for (const auto& ops : p.deviceOps) {
        for (const auto& op : ops) {
            if (op.cls == cls)
                ++n;
        }
    }
    return n;
}

// ---- builder ----------------------------------------------------------------

TEST(Builder, MicrobatchAccounting)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(8, 2,
                                                                2));
    TrainOptions opts;
    opts.globalBatchSize = 64;
    opts.microbatchSize = 2;
    ProgramBuilder b(tinyModel(), map, opts);
    // dp = 2 -> 32 samples per replica -> 16 microbatches.
    EXPECT_EQ(b.numMicrobatches(), 16);
    EXPECT_DOUBLE_EQ(b.tokensPerIteration(), 64.0 * 1024.0);
}

TEST(Builder, BubbleFractionFormula)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(8, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 32;
    opts.microbatchSize = 1;
    ProgramBuilder b(tinyModel(), map, opts);
    // dp = 2, m = 16, p = 4: (4-1)/(16+4-1).
    EXPECT_NEAR(b.pipelineBubbleFraction(), 3.0 / 19.0, 1e-12);
}

TEST(Builder, FirstAndLastStageSkipBoundaryP2p)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    // Stage 0 (device 0) never receives forward activations.
    for (const auto& op : p.deviceOps[0]) {
        if (op.type == OpType::Recv)
            EXPECT_STREQ(op.name, "recv-bwd");
        if (op.type == OpType::Send)
            EXPECT_STREQ(op.name, "send-fwd");
    }
    // Last stage (device 3) computes the head.
    bool has_head = false;
    for (const auto& op : p.deviceOps[3])
        has_head |= std::string(op.name) == "fwd-head";
    EXPECT_TRUE(has_head);
    for (const auto& op : p.deviceOps[0]) {
        EXPECT_NE(std::string(op.name), "fwd-head");
    }
}

TEST(Builder, SendRecvCountsMatch1F1B)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8; // m = 8
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    // Each stage boundary carries m fwd + m bwd messages; 3
    // boundaries -> 48 sends and 48 recvs total.
    EXPECT_EQ(countOps(p, OpType::Send), 48);
    EXPECT_EQ(countOps(p, OpType::Recv), 48);
}

TEST(Builder, TpPlusPpEmitsUnchunkedSendRecv)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(8, 2,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    for (const auto& ops : p.deviceOps) {
        for (const auto& op : ops) {
            if (op.type == OpType::Send)
                EXPECT_FALSE(op.chunked); // tp > 1: sparse slices
        }
    }
    // Pure PP chunks normally.
    parallel::RankMapper map1(parallel::ParallelConfig::forWorld(4, 1,
                                                                 4));
    ProgramBuilder b1(tinyModel(), map1, opts);
    Program p1 = b1.build(0);
    for (const auto& ops : p1.deviceOps) {
        for (const auto& op : ops) {
            if (op.type == OpType::Send)
                EXPECT_TRUE(op.chunked);
        }
    }
}

TEST(Builder, RecomputeAddsRecomputeOps)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    ProgramBuilder base(tinyModel(), map, opts);
    EXPECT_EQ(countClass(base.build(0), hw::KernelClass::Recompute), 0);
    opts.actRecompute = true;
    ProgramBuilder act(tinyModel(), map, opts);
    // One recompute per backward per rank: 4 ranks x 8 microbatches.
    EXPECT_EQ(countClass(act.build(0), hw::KernelClass::Recompute), 32);
}

TEST(Builder, CcOverlapMarksAsyncAndDrains)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(8, 4,
                                                                2));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    opts.ccOverlap = true;
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    int async_colls = 0;
    for (const auto& ops : p.deviceOps) {
        for (const auto& op : ops) {
            if (op.type == OpType::Collective && op.async)
                ++async_colls;
        }
    }
    EXPECT_GT(async_colls, 0);
    EXPECT_GT(countOps(p, OpType::Drain), p.worldSize()); // cc drains
}

TEST(Builder, MoeEmitsAllToAll)
{
    parallel::RankMapper map(
        parallel::ParallelConfig::forWorld(8, 1, 1, 8));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    ProgramBuilder b(tinyMoe(), map, opts);
    Program p = b.build(0);
    // fwd 2 + bwd 2 per microbatch per rank; m = 1 per replica.
    EXPECT_EQ(countClass(p, hw::KernelClass::AllToAll), 8 * 4);
    // Dense model emits none.
    ProgramBuilder d(tinyModel(), map, opts);
    EXPECT_EQ(countClass(d.build(0), hw::KernelClass::AllToAll), 0);
}

TEST(Builder, FsdpEmitsGatherAndScatter)
{
    parallel::RankMapper map(
        parallel::ParallelConfig::forWorld(8, 2, 1, 1, true));
    TrainOptions opts;
    opts.globalBatchSize = 8; // dp = 4 -> m = 2
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    EXPECT_EQ(countClass(p, hw::KernelClass::AllGather), 8 * 2);
    EXPECT_EQ(countClass(p, hw::KernelClass::ReduceScatter), 8 * 2);
}

TEST(Builder, InferenceIsForwardOnly)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    opts.inference = true;
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    EXPECT_EQ(countClass(p, hw::KernelClass::Optimizer), 0);
    for (const auto& ops : p.deviceOps) {
        for (const auto& op : ops)
            EXPECT_NE(std::string(op.name), "bwd-mlp");
    }
}

TEST(Builder, AsymmetricStageLayersRespected)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    opts.stageLayers = {3, 1, 3, 1};
    ProgramBuilder b(tinyModel(), map, opts);
    EXPECT_EQ(b.layersOnStage(0), 3);
    EXPECT_EQ(b.layersOnStage(1), 1);
    // Stage 0 forward compute carries 3x the flops of stage 1.
    Program p = b.build(0);
    double f0 = 0, f1 = 0;
    for (const auto& op : p.deviceOps[0]) {
        if (std::string(op.name) == "fwd-attn")
            f0 = op.flops.value();
    }
    for (const auto& op : p.deviceOps[1]) {
        if (std::string(op.name) == "fwd-attn")
            f1 = op.flops.value();
    }
    EXPECT_NEAR(f0, 3.0 * f1, 1e-6 * f0);
}

TEST(Builder, LoraShrinksGradTraffic)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(8, 1,
                                                                1));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    auto grad_bytes = [&](const model::TransformerConfig& m) {
        ProgramBuilder b(m, map, opts);
        Program p = b.build(0);
        for (const auto& op : p.deviceOps[0]) {
            if (std::string(op.name) == "dp-grad-sync")
                return op.bytes.value();
        }
        return -1.0;
    };
    double full = grad_bytes(tinyModel());
    double lora = grad_bytes(model::withLora(tinyModel(), 16));
    ASSERT_GT(full, 0.0);
    ASSERT_GT(lora, 0.0);
    EXPECT_LT(lora * 20.0, full);
}

// ---- engine integration -----------------------------------------------------

struct EngineFixture : ::testing::Test
{
    /** Run a tiny experiment and return average iteration seconds. */
    double
    runTiny(const model::TransformerConfig& m, int tp, int pp, int ep,
            TrainOptions opts, int cap_node = -1,
            double cap_watts = 0.0)
    {
        core::ClusterSpec cluster = core::h200Cluster(1);
        sim::Simulator simulator;
        net::Topology topo(cluster.network);
        hw::Platform plat(simulator, cluster.gpu, cluster.chassis,
                          cluster.numNodes);
        net::FlowNetwork netw(simulator, topo);
        coll::CollectiveEngine colls(simulator, netw);
        parallel::RankMapper map(
            parallel::ParallelConfig::forWorld(8, tp, pp, ep));
        ProgramBuilder builder(m, map, opts);
        EngineOptions eopts;
        eopts.warmupIterations = 1;
        eopts.measuredIterations = 2;
        TrainingEngine engine(plat, netw, colls, builder, eopts);
        if (cap_node >= 0)
            plat.capNodePower(cap_node, Watts(cap_watts));
        plat.start();
        engine.run();
        return engine.avgIterationSeconds();
    }
};

TEST_F(EngineFixture, RunsToCompletionAllLayouts)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    EXPECT_GT(runTiny(tinyModel(), 8, 1, 1, opts), 0.0);
    EXPECT_GT(runTiny(tinyModel(), 1, 8, 1, opts), 0.0);
    EXPECT_GT(runTiny(tinyModel(), 2, 4, 1, opts), 0.0);
    EXPECT_GT(runTiny(tinyModel(), 2, 2, 2, opts), 0.0);
    EXPECT_GT(runTiny(tinyMoe(), 1, 1, 8, opts), 0.0);
}

TEST_F(EngineFixture, DeterministicAcrossRuns)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    double a = runTiny(tinyModel(), 2, 4, 1, opts);
    double b = runTiny(tinyModel(), 2, 4, 1, opts);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(EngineFixture, RecomputeSlowsIteration)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    double base = runTiny(tinyModel(), 1, 8, 1, opts);
    opts.actRecompute = true;
    double act = runTiny(tinyModel(), 1, 8, 1, opts);
    EXPECT_GT(act, base * 1.05);
}

TEST_F(EngineFixture, CcOverlapHelpsDataParallel)
{
    // DP with distributed optimizer benefits from overlapping the
    // gradient sync (the paper's Llama3-70B observation).
    TrainOptions opts;
    opts.globalBatchSize = 32;
    opts.zero1 = true;
    double base = runTiny(tinyModel(), 2, 1, 1, opts); // dp = 4
    opts.ccOverlap = true;
    double cc = runTiny(tinyModel(), 2, 1, 1, opts);
    EXPECT_LT(cc, base);
}

TEST_F(EngineFixture, MoreMicrobatchesShrinkBubbleOverhead)
{
    // With pp = 8 and everything else fixed, more microbatches mean a
    // proportionally smaller pipeline bubble.
    TrainOptions opts;
    opts.globalBatchSize = 8; // m = 8
    double few = runTiny(tinyModel(), 1, 8, 1, opts);
    opts.globalBatchSize = 32; // m = 32: 4x work, less than 4x time
    double many = runTiny(tinyModel(), 1, 8, 1, opts);
    EXPECT_LT(many, 4.0 * few);
}

TEST_F(EngineFixture, PowerCappedNodeCreatesStraggler)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    double healthy = runTiny(tinyModel(), 8, 1, 1, opts);
    double faulty = runTiny(tinyModel(), 8, 1, 1, opts, 0, 220.0);
    // Node-level power fault throttles everyone in the TP group.
    EXPECT_GT(faulty, healthy * 1.1);
}

TEST_F(EngineFixture, InferenceFasterThanTraining)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    double train = runTiny(tinyModel(), 2, 4, 1, opts);
    opts.inference = true;
    double infer = runTiny(tinyModel(), 2, 4, 1, opts);
    EXPECT_LT(infer * 1.5, train);
}


// ---- interleaved (virtual-stage) scheduling ---------------------------------

TEST(Interleaved, BubbleFractionShrinksWithVirtualStages)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8; // m = 8
    ProgramBuilder v1(tinyModel(), map, opts);
    opts.virtualStages = 2;
    ProgramBuilder v2(tinyModel(), map, opts);
    EXPECT_NEAR(v1.pipelineBubbleFraction(), 3.0 / 11.0, 1e-12);
    EXPECT_NEAR(v2.pipelineBubbleFraction(), 3.0 / 19.0, 1e-12);
    EXPECT_DOUBLE_EQ(v2.layersPerChunk(), 1.0);
}

TEST(Interleaved, DoublesBoundaryMessages)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    ProgramBuilder v1(tinyModel(), map, opts);
    int sends_v1 = countOps(v1.build(0), OpType::Send);
    opts.virtualStages = 2;
    ProgramBuilder v2(tinyModel(), map, opts);
    int sends_v2 = countOps(v2.build(0), OpType::Send);
    // v=2: boundaries grow from 3 to 7 per direction per microbatch.
    EXPECT_GT(sends_v2, 2 * sends_v1);
}

TEST(Interleaved, HeadOnlyOnLastVirtualStage)
{
    parallel::RankMapper map(parallel::ParallelConfig::forWorld(4, 1,
                                                                4));
    TrainOptions opts;
    opts.globalBatchSize = 8;
    opts.virtualStages = 2;
    ProgramBuilder b(tinyModel(), map, opts);
    Program p = b.build(0);
    // Last virtual stage (chunk 1, stage 3) lives on device 3.
    for (int dev = 0; dev < 4; ++dev) {
        int heads = 0;
        for (const auto& op : p.deviceOps[static_cast<std::size_t>(
                 dev)]) {
            if (std::string(op.name) == "fwd-head")
                ++heads;
        }
        EXPECT_EQ(heads, dev == 3 ? 8 : 0) << "device " << dev;
    }
}

struct InterleavedEngine : EngineFixture
{
};

TEST_F(InterleavedEngine, ReducesIterationTimeAtSmallMicrobatchCount)
{
    TrainOptions opts;
    opts.globalBatchSize = 8; // m = 8 = pp: large bubble
    double base = runTiny(tinyModel(), 1, 8, 1, opts);
    opts.virtualStages = 2; // 8 layers / (8*2) ... needs pp 4
    // pp 8 with v 2 needs 16 chunks > 8 layers; use pp 4.
    TrainOptions opts4;
    opts4.globalBatchSize = 8;
    double base4 = runTiny(tinyModel(), 1, 4, 1, opts4);
    opts4.virtualStages = 2;
    double inter4 = runTiny(tinyModel(), 1, 4, 1, opts4);
    EXPECT_LT(inter4, base4);
    (void)base;
}

TEST_F(InterleavedEngine, DeterministicAndComposesWithOptimizations)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    opts.virtualStages = 2;
    opts.actRecompute = true;
    opts.ccOverlap = true;
    double a = runTiny(tinyModel(), 2, 4, 1, opts);
    double b = runTiny(tinyModel(), 2, 4, 1, opts);
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(InterleavedEngine, WorksWithMoEExpertParallelism)
{
    TrainOptions opts;
    opts.globalBatchSize = 16;
    opts.virtualStages = 2;
    EXPECT_GT(runTiny(tinyMoe(), 1, 2, 2, opts), 0.0);
}

} // namespace
