#!/usr/bin/env python3
"""Repo-specific lint for the simulator's determinism and unit contracts.

Three rule families, all scoped to the library tree (src/):

1. Determinism hazards. The simulator promises "same seed -> byte
   identical telemetry"; any ambient-entropy or wall-clock source in
   library code silently breaks that contract. Banned in src/:
   rand(), std::random_device, std::chrono::system_clock /
   steady_clock, time(NULL)/time(nullptr), and getenv (config must
   flow through typed options structs, not the environment).

2. iostream in library code. Library code must not write to std
   streams (output belongs to the example/bench binaries and the CSV/
   trace writers); <iostream> also injects static init order issues.

3. Raw-double unit leaks in public physics headers. Parameters named
   *_w/_j/_c/_bps/_s holding plain double in src/hw, src/net,
   src/coll, src/scale, src/telemetry headers defeat the quantity
   type layer
   (common/quantity.hh); such values must be typed Watts/Joules/
   Celsius/BytesPerSec/Seconds. Timestamps on the simulator clock are
   the sanctioned exception and live in the allowlist.

4. Hot-path allocation hazards. The event kernel and flow solver
   (src/sim/, src/net/) are the per-event hot path; std::function
   (type-erased heap captures) and std::make_shared (per-event
   refcounted records) both cost an allocation per use and are what
   the zero-allocation overhaul removed. New uses are banned; the
   sanctioned boundary-API exceptions (FlowNetwork's user-facing
   completion callbacks and traffic sink) live in the allowlist.
   src/obs/ is held to the same standard: metric increments sit on
   instrumented hot paths.

5. Metric increment paths must not allocate. src/obs/ headers hold
   the inline Counter/Gauge/Histogram increment paths; any
   allocation-prone construct there (new, make_shared/make_unique,
   push_back/emplace_back, resize/reserve, std::function) would put
   a heap call behind every instrumented event. Declarations belong
   in the headers, allocating machinery in the .cc files (which may
   allocate freely: registration and dumping run once per run).

Sanctioned exceptions go in tools/lint_allowlist.txt, one per line:
    <path-substring>:<line-substring>
A finding is suppressed when its path contains <path-substring> and
its source line contains <line-substring>. Lines starting with '#'
and blank lines are ignored. --check-allowlist additionally fails
when an entry no longer suppresses anything, so suppressions cannot
outlive the code they excuse.

Exit status: 0 clean, 1 findings (or stale allowlist), 2 usage/IO
error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST = REPO / "tools" / "lint_allowlist.txt"

CXX_SUFFIXES = {".hh", ".h", ".cc", ".cpp", ".hpp"}

# (rule-id, compiled regex, message) applied to every src/ line.
DETERMINISM_RULES = [
    ("rand", re.compile(r"(?<![\w:])rand\s*\("),
     "rand() is ambient entropy; use common/rng.hh with an explicit seed"),
    ("random-device", re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed common/rng.hh explicitly"),
    ("wall-clock", re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock time breaks replay; use the simulator clock"),
    ("time-null", re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time(NULL) is ambient entropy; use the simulator clock"),
    ("getenv", re.compile(r"\bgetenv\s*\("),
     "environment lookups hide config; pass options structs instead"),
]

IOSTREAM_RULE = re.compile(r'#\s*include\s*<(iostream|ostream|istream)>')

# double parameters whose names carry a unit suffix the quantity layer
# owns: _w(atts) _j(oules) _c(elsius) _bps _s(econds).
RAW_DOUBLE_PARAM = re.compile(
    r"\bdouble\s+\w+_(w|j|c|bps|s)\s*[,)=]")

PHYSICS_HEADER_DIRS = ("src/hw/", "src/net/", "src/coll/",
                       "src/scale/", "src/telemetry/")

# (rule-id, compiled regex, message) applied to hot-path dirs only.
HOT_PATH_RULES = [
    ("std-function", re.compile(r"\bstd\s*::\s*function\b"),
     "std::function heap-allocates captured state on the event hot "
     "path; use sim::EventFn (or a concrete callable type)"),
    ("make-shared", re.compile(r"\bmake_shared\b"),
     "per-event shared_ptr records defeat the slab allocator; use the "
     "pooled event/flow slabs"),
]

HOT_PATH_DIRS = ("src/sim/", "src/net/", "src/obs/")

# Allocation-prone constructs banned from src/obs/ headers (the inline
# metric increment paths). The .cc files may allocate: registration
# and dumping run once per run, outside the event loop.
OBS_HEADER_ALLOC = re.compile(
    r"\bnew\b|\bmake_shared\b|\bmake_unique\b|\bpush_back\b"
    r"|\bemplace_back\b|\bresize\s*\(|\breserve\s*\("
    r"|\bstd\s*::\s*function\b")

OBS_HEADER_DIR = "src/obs/"


class Allowlist:
    """Suppression entries plus per-entry hit counts for staleness."""

    def __init__(self, path: Path):
        self.entries: list[tuple[str, str]] = []
        self.hits: dict[tuple[str, str], int] = {}
        if not path.exists():
            return
        for raw in path.read_text().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if ":" not in line:
                print(f"lint_sim: malformed allowlist entry: {line!r}",
                      file=sys.stderr)
                sys.exit(2)
            path_sub, _, line_sub = line.partition(":")
            self.entries.append((path_sub, line_sub))
            self.hits[(path_sub, line_sub)] = 0

    def allowed(self, rel: str, text: str) -> bool:
        for p, s in self.entries:
            if p in rel and s in text:
                self.hits[(p, s)] += 1
                return True
        return False

    def stale(self) -> list[str]:
        return [f"{p}:{s}" for (p, s), n in self.hits.items() if n == 0]


def strip_comments(line: str, in_block: bool = False) -> tuple[str, bool]:
    """Return @p line with // and /* */ comments removed, plus the
    block-comment state carried into the next line.

    String- and char-literal aware: `//` or `/*` inside a literal (e.g.
    a URL in an error message) is content, not a comment, so the scan
    tracks quote state and escapes instead of using line.find("//") —
    which used to truncate the line at the URL and hide any banned
    construct after it."""
    out: list[str] = []
    quote: str | None = None
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if in_block:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        if quote is not None:
            out.append(c)
            if c == "\\" and i + 1 < n:
                out.append(line[i + 1])
                i += 2
                continue
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if line[i + 1] == "/":
                return "".join(out), False
            if line[i + 1] == "*":
                in_block = True
                i += 2
                continue
        out.append(c)
        i += 1
    return "".join(out), in_block


def lint_file(path: Path, src_root: Path, allowlist: Allowlist) -> list[str]:
    # Rule scopes (src/hw/, src/sim/, ...) and reported paths are both
    # relative to the parent of the linted tree, so fixture trees that
    # mirror the src/ layout exercise every directory-scoped rule.
    rel = path.relative_to(src_root.parent).as_posix()
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(
            path.read_text(errors="replace").splitlines(), 1):
        code, in_block_comment = strip_comments(line, in_block_comment)
        if not code.strip():
            continue

        def report(rule: str, msg: str):
            if not allowlist.allowed(rel, line):
                findings.append(f"{rel}:{lineno}: [{rule}] {msg}\n"
                                f"    {line.strip()}")

        for rule, rx, msg in DETERMINISM_RULES:
            if rx.search(code):
                report(rule, msg)
        if IOSTREAM_RULE.search(code):
            report("iostream", "library code must not use std streams; "
                   "use the CSV/trace writers or return data")
        if (path.suffix in (".hh", ".h", ".hpp")
                and any(rel.startswith(d) for d in PHYSICS_HEADER_DIRS)
                and RAW_DOUBLE_PARAM.search(code)):
            report("raw-double-unit", "unit-suffixed double parameter in a "
                   "physics header; use the typed quantities from "
                   "common/quantity.hh")
        if any(rel.startswith(d) for d in HOT_PATH_DIRS):
            for rule, rx, msg in HOT_PATH_RULES:
                if rx.search(code):
                    report(rule, msg)
        if (path.suffix in (".hh", ".h", ".hpp")
                and rel.startswith(OBS_HEADER_DIR)
                and OBS_HEADER_ALLOC.search(code)):
            report("obs-header-alloc",
                   "allocation-prone construct in an obs header; the "
                   "inline metric increment path must not allocate — "
                   "declare here, define in the .cc")
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(prog="lint_sim")
    ap.add_argument("--src", default=str(REPO / "src"),
                    help="source tree to lint (default: repo src/)")
    ap.add_argument("--allowlist", default=str(ALLOWLIST),
                    help="suppression file (default: "
                         "tools/lint_allowlist.txt)")
    ap.add_argument("--check-allowlist", action="store_true",
                    help="fail if any allowlist entry is stale")
    args = ap.parse_args()

    src = Path(args.src).resolve()
    if not src.is_dir():
        print(f"lint_sim: source tree not found: {src}", file=sys.stderr)
        return 2
    allowlist = Allowlist(Path(args.allowlist))
    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            findings.extend(lint_file(path, src, allowlist))

    status = 0
    if findings:
        print(f"lint_sim: {len(findings)} finding(s)\n")
        print("\n".join(findings))
        print("\nSanctioned exceptions go in tools/lint_allowlist.txt "
              "(<path-substring>:<line-substring>).")
        status = 1
    else:
        print("lint_sim: clean")

    stale = allowlist.stale()
    if args.check_allowlist and stale:
        print("\nlint_sim: stale allowlist entries (no longer match "
              "any finding):", file=sys.stderr)
        for entry in stale:
            print(f"    {entry}", file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
