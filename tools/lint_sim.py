#!/usr/bin/env python3
"""Repo-specific lint for the simulator's determinism and unit contracts.

Three rule families, all scoped to the library tree (src/):

1. Determinism hazards. The simulator promises "same seed -> byte
   identical telemetry"; any ambient-entropy or wall-clock source in
   library code silently breaks that contract. Banned in src/:
   rand(), std::random_device, std::chrono::system_clock /
   steady_clock, time(NULL)/time(nullptr), and getenv (config must
   flow through typed options structs, not the environment).

2. iostream in library code. Library code must not write to std
   streams (output belongs to the example/bench binaries and the CSV/
   trace writers); <iostream> also injects static init order issues.

3. Raw-double unit leaks in public physics headers. Parameters named
   *_w/_j/_c/_bps/_s holding plain double in src/hw, src/net,
   src/coll, src/scale, src/telemetry headers defeat the quantity
   type layer
   (common/quantity.hh); such values must be typed Watts/Joules/
   Celsius/BytesPerSec/Seconds. Timestamps on the simulator clock are
   the sanctioned exception and live in the allowlist.

4. Hot-path allocation hazards. The event kernel and flow solver
   (src/sim/, src/net/) are the per-event hot path; std::function
   (type-erased heap captures) and std::make_shared (per-event
   refcounted records) both cost an allocation per use and are what
   the zero-allocation overhaul removed. New uses are banned; the
   sanctioned boundary-API exceptions (FlowNetwork's user-facing
   completion callbacks and traffic sink) live in the allowlist.
   src/obs/ is held to the same standard: metric increments sit on
   instrumented hot paths.

5. Metric increment paths must not allocate. src/obs/ headers hold
   the inline Counter/Gauge/Histogram increment paths; any
   allocation-prone construct there (new, make_shared/make_unique,
   push_back/emplace_back, resize/reserve, std::function) would put
   a heap call behind every instrumented event. Declarations belong
   in the headers, allocating machinery in the .cc files (which may
   allocate freely: registration and dumping run once per run).

Sanctioned exceptions go in tools/lint_allowlist.txt, one per line:
    <path-substring>:<line-substring>
A finding is suppressed when its path contains <path-substring> and
its source line contains <line-substring>. Lines starting with '#'
and blank lines are ignored.

Exit status: 0 clean, 1 findings, 2 usage/IO error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ALLOWLIST = REPO / "tools" / "lint_allowlist.txt"

CXX_SUFFIXES = {".hh", ".h", ".cc", ".cpp", ".hpp"}

# (rule-id, compiled regex, message) applied to every src/ line.
DETERMINISM_RULES = [
    ("rand", re.compile(r"(?<![\w:])rand\s*\("),
     "rand() is ambient entropy; use common/rng.hh with an explicit seed"),
    ("random-device", re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed common/rng.hh explicitly"),
    ("wall-clock", re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock time breaks replay; use the simulator clock"),
    ("time-null", re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time(NULL) is ambient entropy; use the simulator clock"),
    ("getenv", re.compile(r"\bgetenv\s*\("),
     "environment lookups hide config; pass options structs instead"),
]

IOSTREAM_RULE = re.compile(r'#\s*include\s*<(iostream|ostream|istream)>')

# double parameters whose names carry a unit suffix the quantity layer
# owns: _w(atts) _j(oules) _c(elsius) _bps _s(econds).
RAW_DOUBLE_PARAM = re.compile(
    r"\bdouble\s+\w+_(w|j|c|bps|s)\s*[,)=]")

PHYSICS_HEADER_DIRS = ("src/hw/", "src/net/", "src/coll/",
                       "src/scale/", "src/telemetry/")

# (rule-id, compiled regex, message) applied to hot-path dirs only.
HOT_PATH_RULES = [
    ("std-function", re.compile(r"\bstd\s*::\s*function\b"),
     "std::function heap-allocates captured state on the event hot "
     "path; use sim::EventFn (or a concrete callable type)"),
    ("make-shared", re.compile(r"\bmake_shared\b"),
     "per-event shared_ptr records defeat the slab allocator; use the "
     "pooled event/flow slabs"),
]

HOT_PATH_DIRS = ("src/sim/", "src/net/", "src/obs/")

# Allocation-prone constructs banned from src/obs/ headers (the inline
# metric increment paths). The .cc files may allocate: registration
# and dumping run once per run, outside the event loop.
OBS_HEADER_ALLOC = re.compile(
    r"\bnew\b|\bmake_shared\b|\bmake_unique\b|\bpush_back\b"
    r"|\bemplace_back\b|\bresize\s*\(|\breserve\s*\("
    r"|\bstd\s*::\s*function\b")

OBS_HEADER_DIR = "src/obs/"


def load_allowlist() -> list[tuple[str, str]]:
    entries = []
    if not ALLOWLIST.exists():
        return entries
    for raw in ALLOWLIST.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if ":" not in line:
            print(f"lint_sim: malformed allowlist entry: {line!r}",
                  file=sys.stderr)
            sys.exit(2)
        path_sub, _, line_sub = line.partition(":")
        entries.append((path_sub, line_sub))
    return entries


def allowed(rel: str, text: str,
            allowlist: list[tuple[str, str]]) -> bool:
    return any(p in rel and s in text for p, s in allowlist)


def strip_comment(line: str) -> str:
    """Drop // comments so prose mentioning rand() etc. doesn't trip."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_file(path: Path, allowlist) -> list[str]:
    rel = path.relative_to(REPO).as_posix()
    findings = []
    in_block_comment = False
    for lineno, line in enumerate(
            path.read_text(errors="replace").splitlines(), 1):
        # Cheap block-comment tracking: skip fully-commented lines.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        start = code.find("/*")
        if start >= 0 and code.find("*/", start) < 0:
            in_block_comment = True
            code = code[:start]
        code = strip_comment(code)
        if not code.strip():
            continue

        def report(rule: str, msg: str):
            if not allowed(rel, line, allowlist):
                findings.append(f"{rel}:{lineno}: [{rule}] {msg}\n"
                                f"    {line.strip()}")

        for rule, rx, msg in DETERMINISM_RULES:
            if rx.search(code):
                report(rule, msg)
        if IOSTREAM_RULE.search(code):
            report("iostream", "library code must not use std streams; "
                   "use the CSV/trace writers or return data")
        if (path.suffix in (".hh", ".h", ".hpp")
                and any(rel.startswith(d) for d in PHYSICS_HEADER_DIRS)
                and RAW_DOUBLE_PARAM.search(code)):
            report("raw-double-unit", "unit-suffixed double parameter in a "
                   "physics header; use the typed quantities from "
                   "common/quantity.hh")
        if any(rel.startswith(d) for d in HOT_PATH_DIRS):
            for rule, rx, msg in HOT_PATH_RULES:
                if rx.search(code):
                    report(rule, msg)
        if (path.suffix in (".hh", ".h", ".hpp")
                and rel.startswith(OBS_HEADER_DIR)
                and OBS_HEADER_ALLOC.search(code)):
            report("obs-header-alloc",
                   "allocation-prone construct in an obs header; the "
                   "inline metric increment path must not allocate — "
                   "declare here, define in the .cc")
    return findings


def main() -> int:
    src = REPO / "src"
    if not src.is_dir():
        print("lint_sim: src/ not found (run from the repo)",
              file=sys.stderr)
        return 2
    allowlist = load_allowlist()
    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            findings.extend(lint_file(path, allowlist))
    if findings:
        print(f"lint_sim: {len(findings)} finding(s)\n")
        print("\n".join(findings))
        print("\nSanctioned exceptions go in tools/lint_allowlist.txt "
              "(<path-substring>:<line-substring>).")
        return 1
    print("lint_sim: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
