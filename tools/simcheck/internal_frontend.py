"""Built-in C++ frontend: tokens -> simcheck IR, no libclang needed.

This is a scope-tracking structural parser, not a full C++ parser. It
understands exactly as much C++ as the rules need:

 - namespace / class / struct nesting with access specifiers
 - function definitions (incl. ctors with init lists, trailing return
   types, operators) and their parameter lists
 - variable declarations whose type is "interesting" (containers, RNG
   engines, raw pointers, plain double)
 - range-for statements and the entity they iterate
 - call sites by unqualified callee name
 - lambdas, including whether one is passed to the event-scheduling
   API (schedule / scheduleAt / every) and therefore runs on the
   event-dispatch hot path

Macro bodies are not expanded; the simulator library is macro-light by
policy (CHARLLM_ASSERT/CHECK only), so this costs nothing in practice.
The libclang frontend (clang_frontend.py) produces the same IR from a
real AST and is preferred when python3-clang is installed.
"""

from __future__ import annotations

from cxxlex import DIRECTIVE, ID, PUNCT, Token, find_matching, tokenize
from ir import CallSite, FileModel, Function, Param, RangeFor

KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "consteval", "constexpr", "constinit",
    "const_cast", "continue", "decltype", "default", "delete", "do",
    "double", "dynamic_cast", "else", "enum", "explicit", "export",
    "extern", "false", "float", "for", "friend", "goto", "if", "inline",
    "int", "long", "mutable", "namespace", "new", "noexcept", "nullptr",
    "operator", "private", "protected", "public", "register",
    "reinterpret_cast", "requires", "return", "short", "signed", "sizeof",
    "static", "static_assert", "static_cast", "struct", "switch",
    "template", "this", "thread_local", "throw", "true", "try", "typedef",
    "typeid", "typename", "union", "unsigned", "using", "virtual", "void",
    "volatile", "wchar_t", "while", "co_await", "co_return", "co_yield",
    "final", "override",
}

# Call-expression names that are control flow / casts, not functions.
NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "decltype", "noexcept", "catch", "assert", "defined", "typeid",
    "static_assert", "alignas", "throw", "new", "delete", "requires",
}

# Functions whose callable argument runs on the event-dispatch path.
SCHEDULE_FNS = {"schedule", "scheduleAt", "every"}

_QUALIFIERS = {"const", "constexpr", "inline", "static", "virtual",
               "explicit", "friend", "mutable", "typename", "volatile",
               "noexcept", "override", "final", "consteval", "constinit",
               "extern", "thread_local", "[[nodiscard]]"}

# Type heads worth recording as variable declarations.
_CONTAINER_HEADS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "map", "set", "multimap", "multiset",
    "vector", "deque", "list", "array", "span",
}
_RNG_HEADS = {
    "mt19937", "mt19937_64", "default_random_engine", "minstd_rand",
    "minstd_rand0", "ranlux24", "ranlux48", "knuth_b", "Rng",
}


def _type_text(toks: list[Token]) -> str:
    """Render a token span as a normalized type string."""
    out: list[str] = []
    for t in toks:
        if out and out[-1] and (out[-1][-1].isalnum() or out[-1][-1] == "_") \
                and (t.text[0].isalnum() or t.text[0] == "_"):
            out.append(" ")
        out.append(t.text)
    return "".join(out)


class _Parser:
    def __init__(self, path: str, rel: str, text: str):
        self.toks = tokenize(text)
        self.model = FileModel(
            path=rel,
            is_header=rel.endswith((".hh", ".h", ".hpp")),
            tokens=self.toks,
        )

    # ------------------------------------------------------------------
    # Scope walk
    # ------------------------------------------------------------------

    def parse(self) -> FileModel:
        self._walk_scope(0, len(self.toks), ns=[], cls=[], access="free")
        return self.model

    def _walk_scope(self, start: int, end: int, ns: list[str],
                    cls: list[str], access: str) -> None:
        """Parse declarations between token indexes [start, end)."""
        toks = self.toks
        i = start
        stmt_start = start
        while i < end:
            t = toks[i]
            text = t.text

            if t.kind == DIRECTIVE:
                i += 1
                stmt_start = i
                continue

            if text == "template":
                # Skip the parameter list: template < ... >
                if i + 1 < end and toks[i + 1].text == "<":
                    i = self._skip_angles(i + 1, end)
                    continue

            if text == "namespace":
                i = self._enter_namespace(i, end, ns, cls)
                stmt_start = i
                continue

            if text in ("class", "struct") and self._is_class_def(i, end):
                i = self._enter_class(i, end, ns, cls, text)
                stmt_start = i
                continue

            if text == "enum":
                i = self._skip_enum(i, end)
                stmt_start = i
                continue

            if text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":" and cls:
                access = text
                i += 2
                stmt_start = i
                continue

            if text in (";", "}"):
                i += 1
                stmt_start = i
                continue

            if text == "{":
                # Stray block at namespace scope (e.g. extern "C").
                close = find_matching(toks, i, "{", "}")
                if close < 0:
                    return
                self._walk_scope(i + 1, close, ns, cls, access)
                i = close + 1
                stmt_start = i
                continue

            # Candidate function definition/declaration?
            fn_end = self._try_function(stmt_start, i, end, ns, cls, access)
            if fn_end is not None:
                i = fn_end
                stmt_start = i
                continue

            # Member/namespace-scope variable declaration?
            decl_end = self._try_decl(stmt_start, i, end, ns, cls,
                                      into_members=bool(cls))
            if decl_end is not None:
                i = decl_end
                stmt_start = i
                continue

            i += 1

    # -- scope helpers --------------------------------------------------

    def _skip_angles(self, i: int, end: int) -> int:
        """Skip a < ... > run starting at toks[i] == '<'."""
        depth = 0
        while i < end:
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # malformed / not a template after all
            i += 1
        return end

    def _enter_namespace(self, i: int, end: int, ns: list[str],
                         cls: list[str]) -> int:
        toks = self.toks
        j = i + 1
        name_parts: list[str] = []
        while j < end and toks[j].text not in ("{", ";", "="):
            if toks[j].kind == ID:
                name_parts.append(toks[j].text)
            j += 1
        if j >= end or toks[j].text != "{":
            return j + 1  # alias or malformed
        close = find_matching(toks, j, "{", "}")
        if close < 0:
            return end
        self._walk_scope(j + 1, close,
                         ns + (name_parts or ["<anon>"]), cls, "free")
        return close + 1

    def _is_class_def(self, i: int, end: int) -> bool:
        """class/struct keyword followed (eventually) by a body '{'."""
        j = i + 1
        depth = 0
        while j < end:
            t = self.toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
            elif depth == 0:
                if t == "{":
                    return True
                if t in (";", ")", "="):
                    return False
            j += 1
        return False

    def _enter_class(self, i: int, end: int, ns: list[str],
                     cls: list[str], kw: str) -> int:
        toks = self.toks
        j = i + 1
        # Skip attributes / alignas, take the last ID before ':' or '{'.
        name = "<anon>"
        while j < end and toks[j].text not in ("{", ":", ";"):
            if toks[j].kind == ID and toks[j].text not in _QUALIFIERS:
                name = toks[j].text
            if toks[j].text == "<":  # explicit specialization args
                j = self._skip_angles(j, end)
                continue
            j += 1
        while j < end and toks[j].text != "{":
            j += 1
        if j >= end:
            return end
        close = find_matching(toks, j, "{", "}")
        if close < 0:
            return end
        default_access = "private" if kw == "class" else "public"
        self._walk_scope(j + 1, close, ns, cls + [name], default_access)
        return close + 1

    def _skip_enum(self, i: int, end: int) -> int:
        j = i
        while j < end and self.toks[j].text not in ("{", ";"):
            j += 1
        if j < end and self.toks[j].text == "{":
            close = find_matching(self.toks, j, "{", "}")
            return (close + 1) if close >= 0 else end
        return j + 1

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def _try_function(self, stmt_start: int, i: int, end: int,
                      ns: list[str], cls: list[str],
                      access: str) -> int | None:
        """If toks[i] opens a function's parameter list, parse through
        the body (or ';') and return the index just past it."""
        toks = self.toks
        if toks[i].text != "(":
            return None
        # Name is the identifier (or operator spelling) before '('.
        k = i - 1
        if k < stmt_start:
            return None
        name = None
        name_idx = k
        if toks[k].kind == ID:
            name = toks[k].text
        elif toks[k].kind == PUNCT or toks[k].text in (")", "]"):
            # operator<, operator(), operator[] ...
            back = k
            while back >= stmt_start and toks[back].text != "operator":
                back -= 1
            if back >= stmt_start:
                name = "operator" + "".join(
                    t.text for t in toks[back + 1 : i])
                name_idx = back
        if not name or name in KEYWORDS or name in NOT_CALLS:
            return None
        close = find_matching(toks, i, "(", ")")
        if close < 0 or close + 1 >= end:
            return None
        # After ')': qualifiers, trailing return, ctor init list, then
        # '{' (definition), ';' (declaration), or something else (not a
        # function at all — e.g. a call expression).
        j = close + 1
        saw_arrow = False
        while j < end:
            t = toks[j].text
            if t in ("const", "noexcept", "override", "final", "mutable",
                     "&", "&&", "throw", "requires"):
                if t in ("noexcept", "throw", "requires") and \
                        j + 1 < end and toks[j + 1].text == "(":
                    c2 = find_matching(toks, j + 1, "(", ")")
                    if c2 < 0:
                        return None
                    j = c2 + 1
                    continue
                j += 1
                continue
            if t == "->":
                saw_arrow = True
                j += 1
                continue
            if saw_arrow and t not in ("{", ";"):
                if t == "<":
                    j = self._skip_angles(j, end)
                else:
                    j += 1
                continue
            break
        if j >= end:
            return None
        body_open: int | None = None
        if toks[j].text == "{":
            body_open = j
        elif toks[j].text == ":" and cls and name == cls[-1]:
            body_open = self._skip_ctor_inits(j + 1, end)
            if body_open is None:
                return None
        elif toks[j].text == "=" and j + 1 < end and \
                toks[j + 1].text in ("default", "delete", "0"):
            return self._find_semi(j, end)
        elif toks[j].text == ";":
            # Pure declaration: record signature only when it looks like
            # one (return type tokens precede the name).
            if self._looks_like_signature(stmt_start, name_idx):
                self._record_function(name, stmt_start, name_idx, i, close,
                                      None, None, ns, cls, access)
            return j + 1
        else:
            return None
        body_close = find_matching(toks, body_open, "{", "}")
        if body_close < 0:
            return None
        if not self._looks_like_signature(stmt_start, name_idx) and \
                not (cls and name == cls[-1]) and \
                not name.startswith("operator") and \
                not (cls and name == "~" + cls[-1]):
            return None
        self._record_function(name, stmt_start, name_idx, i, close,
                              body_open, body_close, ns, cls, access)
        return body_close + 1

    def _looks_like_signature(self, stmt_start: int, name_idx: int) -> bool:
        """A definition needs a return type (or ctor/dtor handling)."""
        toks = self.toks
        k = stmt_start
        seen_type = False
        while k < name_idx:
            t = toks[k]
            if t.kind == ID and t.text not in _QUALIFIERS:
                seen_type = True
            if t.text in ("auto", "void", "double", "int", "bool"):
                seen_type = True
            k += 1
        # Destructor: ~Name().
        if not seen_type and name_idx > 0 and toks[name_idx - 1].text == "~":
            return True
        return seen_type

    def _skip_ctor_inits(self, j: int, end: int) -> int | None:
        """Parse `name(args), name{args}, ... {` -> index of body '{'."""
        toks = self.toks
        while j < end:
            while j < end and toks[j].kind != ID:
                if toks[j].text == "{":
                    return j  # empty-ish / lambda-free fallback
                j += 1
            j += 1  # past member name
            if j < end and toks[j].text == "<":
                j = self._skip_angles(j, end)
            if j >= end or toks[j].text not in ("(", "{"):
                return None
            open_t = toks[j].text
            close_t = ")" if open_t == "(" else "}"
            c = find_matching(toks, j, open_t, close_t)
            if c < 0:
                return None
            j = c + 1
            if j < end and toks[j].text == ",":
                j += 1
                continue
            if j < end and toks[j].text == "{":
                return j
            return None
        return None

    def _find_semi(self, j: int, end: int) -> int:
        while j < end and self.toks[j].text != ";":
            j += 1
        return j + 1

    def _record_function(self, name: str, stmt_start: int, name_idx: int,
                         paren_open: int, paren_close: int,
                         body_open: int | None, body_close: int | None,
                         ns: list[str], cls: list[str],
                         access: str) -> None:
        toks = self.toks
        # Return type: statement start .. name (minus qualifiers and any
        # Class:: qualification on out-of-line definitions).
        ret_toks = [t for t in toks[stmt_start:name_idx]
                    if t.text not in _QUALIFIERS]
        # Drop trailing `Class ::` qualification chains.
        while len(ret_toks) >= 2 and ret_toks[-1].text == "::":
            ret_toks = ret_toks[:-2]
        return_type = _type_text(ret_toks)
        # Out-of-line definition: fold `Class::name` into the qname.
        qcls = list(cls)
        k = name_idx - 1
        while k - 1 >= stmt_start and toks[k].text == "::" and \
                toks[k - 1].kind == ID:
            qcls.append(toks[k - 1].text)
            k -= 2
        qname = "::".join([p for p in ns if p != "<anon>"] + qcls + [name])
        params = self._parse_params(paren_open + 1, paren_close)
        fn = Function(
            qname=qname,
            name=name,
            file=self.model.path,
            line=toks[name_idx].line,
            return_type=return_type,
            params=params,
            access=access if (cls or qcls) else "free",
            is_header=self.model.is_header,
        )
        for p in params:
            fn.decls[p.name] = p.type_str
        # Seed member types for method bodies: Class::member entries.
        owner = qcls[-1] if qcls else None
        if owner:
            prefix = owner + "::"
            for key, ty in self.model.members.items():
                if key.startswith(prefix):
                    fn.decls.setdefault(key[len(prefix):], ty)
        if body_open is not None and body_close is not None:
            self._parse_body(fn, body_open + 1, body_close)
        self.model.functions.append(fn)

    def _parse_params(self, start: int, end: int) -> list[Param]:
        toks = self.toks
        params: list[Param] = []
        # Split on top-level commas.
        pieces: list[tuple[int, int]] = []
        depth = 0
        piece_start = start
        for j in range(start, end):
            t = toks[j].text
            if t in ("(", "[", "{", "<"):
                depth += 1
            elif t in (")", "]", "}", ">"):
                depth -= 1
            elif t == "," and depth == 0:
                pieces.append((piece_start, j))
                piece_start = j + 1
        if piece_start < end:
            pieces.append((piece_start, end))
        for a, b in pieces:
            span = toks[a:b]
            if not span:
                continue
            # Strip default argument.
            for j, t in enumerate(span):
                if t.text == "=":
                    span = span[:j]
                    break
            if not span:
                continue
            # Name = trailing identifier; type = the rest.
            if span[-1].kind == ID and span[-1].text not in KEYWORDS and \
                    len(span) > 1:
                name = span[-1].text
                ty = _type_text([t for t in span[:-1]
                                 if t.text not in _QUALIFIERS])
                params.append(Param(name=name, type_str=ty,
                                    line=span[-1].line))
            else:
                ty = _type_text([t for t in span
                                 if t.text not in _QUALIFIERS])
                if ty and ty != "void":
                    params.append(Param(name="", type_str=ty,
                                        line=span[0].line))
        return params

    # ------------------------------------------------------------------
    # Function bodies
    # ------------------------------------------------------------------

    def _parse_body(self, fn: Function, start: int, end: int) -> None:
        """Extract decls, range-fors, calls, lambdas from [start, end)."""
        toks = self.toks
        lambda_spans: list[tuple[int, int]] = []
        i = start
        while i < end:
            t = toks[i]
            text = t.text

            # Nested lambda?
            if text == "[" and self._is_lambda_intro(i):
                span = self._parse_lambda(fn, i, end)
                if span is not None:
                    lambda_spans.append(span)
                    i = span[1] + 1
                    continue

            # Range-for.
            if text == "for" and i + 1 < end and toks[i + 1].text == "(":
                close = find_matching(toks, i + 1, "(", ")")
                if close > 0:
                    self._maybe_range_for(fn, i + 2, close)

            # Interesting declaration.
            decl_end = self._try_decl(i, i, end, [], [], into_members=False,
                                      fn=fn)
            if decl_end is not None:
                i = decl_end
                continue

            # Call site.
            if t.kind == ID and text not in KEYWORDS and \
                    text not in NOT_CALLS and i + 1 < end and \
                    toks[i + 1].text == "(":
                fn.calls.append(CallSite(callee=text, line=t.line))
            # Call with explicit template args: name<T>(...).
            elif t.kind == ID and text not in KEYWORDS and \
                    text not in NOT_CALLS and i + 1 < end and \
                    toks[i + 1].text == "<":
                after = self._skip_angles(i + 1, end)
                if after < end and self.toks[after].text == "(":
                    fn.calls.append(CallSite(callee=text, line=t.line))

            i += 1

        # Own tokens = body minus nested lambda bodies.
        own: list[Token] = []
        j = start
        spans = iter(lambda_spans)
        cur = next(spans, None)
        while j < end:
            if cur and j == cur[0]:
                j = cur[1] + 1
                cur = next(spans, None)
                continue
            own.append(toks[j])
            j += 1
        fn.tokens = own

    def _is_lambda_intro(self, i: int) -> bool:
        if i == 0:
            return True
        prev = self.toks[i - 1]
        if prev.kind == ID:
            return prev.text in ("return", "case") or prev.text in KEYWORDS
        return prev.text not in (")", "]")

    def _parse_lambda(self, parent: Function, i: int,
                      end: int) -> tuple[int, int] | None:
        toks = self.toks
        cap_close = find_matching(toks, i, "[", "]")
        if cap_close < 0:
            return None
        j = cap_close + 1
        params: list[Param] = []
        if j < end and toks[j].text == "(":
            pc = find_matching(toks, j, "(", ")")
            if pc < 0:
                return None
            params = self._parse_params(j + 1, pc)
            j = pc + 1
        # Skip mutable/noexcept/-> Type.
        saw_arrow = False
        while j < end and toks[j].text != "{":
            if toks[j].text == "->":
                saw_arrow = True
            elif not saw_arrow and toks[j].text not in (
                    "mutable", "noexcept", "constexpr"):
                return None  # not a lambda (e.g. attribute)
            j += 1
        if j >= end:
            return None
        body_close = find_matching(toks, j, "{", "}")
        if body_close < 0:
            return None
        lam = Function(
            qname=f"{parent.qname}::<lambda@{toks[i].line}>",
            name=f"<lambda@{toks[i].line}>",
            file=self.model.path,
            line=toks[i].line,
            return_type="",
            params=params,
            access=parent.access,
            is_header=parent.is_header,
            is_lambda=True,
            parent=parent.qname,
        )
        lam.decls.update(parent.decls)  # captures see enclosing decls
        for p in params:
            lam.decls[p.name] = p.type_str
        # Passed to the scheduling API? Look back for `schedule(` /
        # `scheduleAt(` / `every(` with this lambda inside its parens.
        lam.is_event_handler = self._inside_schedule_call(i)
        self._parse_body(lam, j + 1, body_close)
        self.model.functions.append(lam)
        return (i, body_close)

    def _inside_schedule_call(self, i: int) -> bool:
        """Walk back over balanced groups looking for `scheduleFn(`."""
        toks = self.toks
        depth = 0
        j = i - 1
        hops = 0
        while j >= 0 and hops < 400:
            t = toks[j].text
            if t in (")", "]", "}"):
                depth += 1
            elif t in ("(", "[", "{"):
                if depth == 0:
                    if t == "(" and j >= 1 and \
                            toks[j - 1].text in SCHEDULE_FNS:
                        return True
                    if t != "(":
                        return False
                    # Nested group (e.g. an argument expr); keep going.
                    j -= 1
                    hops += 1
                    continue
                depth -= 1
            elif depth == 0 and t == ";":
                return False
            j -= 1
            hops += 1
        return False

    def _maybe_range_for(self, fn: Function, start: int, end: int) -> None:
        toks = self.toks
        # Find top-level ':' (not '::', which lexes as one token).
        depth = 0
        colon = -1
        for j in range(start, end):
            t = toks[j].text
            if t in ("(", "[", "{", "<"):
                depth += 1
            elif t in (")", "]", "}", ">"):
                depth -= 1
            elif t == ":" and depth == 0:
                colon = j
                break
        if colon < 0:
            return
        expr = toks[colon + 1 : end]
        name = ""
        if len(expr) == 1 and expr[0].kind == ID:
            name = expr[0].text
        elif len(expr) == 3 and expr[0].text == "this" and \
                expr[1].text == "->":
            name = expr[2].text
        elif len(expr) == 3 and expr[0].kind == ID and \
                expr[1].text in (".", "->"):
            name = f"{expr[0].text}.{expr[2].text}"
        ty = fn.decls.get(name, "") if name else ""
        if not ty and "." in name:
            base, _, field = name.partition(".")
            base_ty = fn.decls.get(base, "")
            key = base_ty.split("<")[0].split("::")[-1] + "::" + field
            ty = self.model.members.get(key, "")
        fn.range_fors.append(
            RangeFor(expr_name=name, expr_type=ty, line=toks[start].line))

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _try_decl(self, stmt_start: int, i: int, end: int, ns: list[str],
                  cls: list[str], into_members: bool,
                  fn: Function | None = None) -> int | None:
        """Record container/RNG/pointer/double declarations starting at
        toks[i]; returns index past the declarator name, else None."""
        toks = self.toks
        t = toks[i]
        if t.kind != ID:
            return None
        # Statement must start here or with std:: / const prefix.
        head = t.text
        j = i
        type_start = i
        if head == "std" and j + 1 < end and toks[j + 1].text == "::":
            j += 2
            if j >= end or toks[j].kind != ID:
                return None
            head = toks[j].text
        if head in _CONTAINER_HEADS or head in _RNG_HEADS:
            k = j + 1
            if k < end and toks[k].text == "<":
                k = self._skip_angles(k, end)
            type_toks = toks[type_start:k]
            # Optional & / * after the template args.
            while k < end and toks[k].text in ("&", "*", "const"):
                type_toks = type_toks + [toks[k]]
                k += 1
            if k < end and toks[k].kind == ID and \
                    toks[k].text not in KEYWORDS:
                name = toks[k].text
                nxt = toks[k + 1].text if k + 1 < end else ""
                if nxt in (";", "=", "{", "(", ",", ")"):
                    ty = _type_text(type_toks)
                    self._record_decl(name, ty, toks[k].line, cls,
                                      into_members, fn)
                    # For RNG rule: record whether ctor got arguments.
                    if fn is not None and head in _RNG_HEADS:
                        has_args = False
                        if nxt in ("(", "{"):
                            close_t = ")" if nxt == "(" else "}"
                            c = find_matching(toks, k + 1, nxt, close_t)
                            has_args = c > k + 2
                        fn.decls[f"<rng-args:{name}>"] = \
                            "yes" if has_args else "no"
                        if not has_args:
                            fn.decls[f"<rng-line:{name}>"] = \
                                str(toks[k].line)
                    return k + 1
            return None
        # Raw pointer declaration: Type * name  (Type may be qualified).
        if head not in KEYWORDS or head in ("double", "float", "int",
                                            "char", "bool", "void"):
            k = j + 1
            while k < end and toks[k].text == "::" and k + 1 < end and \
                    toks[k + 1].kind == ID:
                k += 2
            if k < end and toks[k].text == "<":
                k = self._skip_angles(k, end)
            stars = 0
            while k < end and toks[k].text in ("*", "const"):
                if toks[k].text == "*":
                    stars += 1
                k += 1
            if stars and k < end and toks[k].kind == ID and \
                    toks[k].text not in KEYWORDS:
                nxt = toks[k + 1].text if k + 1 < end else ""
                if nxt in (";", "=", ",", ")", "{"):
                    ty = _type_text(toks[type_start:k])
                    self._record_decl(toks[k].text, ty, toks[k].line,
                                      cls, into_members, fn)
                    return k + 1
        return None

    def _record_decl(self, name: str, ty: str, line: int, cls: list[str],
                     into_members: bool, fn: Function | None) -> None:
        if fn is not None:
            fn.decls[name] = ty
        elif into_members and cls:
            self.model.members[f"{cls[-1]}::{name}"] = ty


def parse_file(abs_path: str, rel_path: str) -> FileModel:
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    return _Parser(abs_path, rel_path, text).parse()
