"""libclang frontend: clang.cindex over compile_commands.json -> IR.

Preferred when python3-clang is installed (CI pins the version; see
.github/workflows/ci.yml). Produces the same FileModel/Function IR as
internal_frontend so every rule runs unchanged on a real AST: accurate
types for range-fors and declarations, real access specifiers, and
call/lambda structure that doesn't rely on heuristics.

The container this repo grows in has no libclang, so this module must
import lazily and fail with FrontendUnavailable rather than at import
time; simcheck.py falls back to the internal frontend in --frontend=auto.
"""

from __future__ import annotations

import json
import os
import re

from cxxlex import Token
from ir import CallSite, FileModel, Function, Param, RangeFor

# libclang majors we have validated the cursor walk against. Anything
# else is refused in --frontend=clang (and skipped in auto) so a silent
# behavior change in a future libclang can't weaken the checks.
SUPPORTED_LIBCLANG_MAJORS = (14, 15, 16, 17, 18, 19)

_LIB_CANDIDATES = [
    f"/usr/lib/llvm-{v}/lib/libclang-{v}.so.1"
    for v in sorted(SUPPORTED_LIBCLANG_MAJORS, reverse=True)
] + [
    f"/usr/lib/llvm-{v}/lib/libclang.so.1"
    for v in sorted(SUPPORTED_LIBCLANG_MAJORS, reverse=True)
] + [
    f"/usr/lib/x86_64-linux-gnu/libclang-{v}.so.1"
    for v in sorted(SUPPORTED_LIBCLANG_MAJORS, reverse=True)
]


class FrontendUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        raise FrontendUnavailable(
            "python3 module clang.cindex not installed "
            "(apt: python3-clang-<N>)") from e
    if not cindex.Config.loaded:
        for cand in _LIB_CANDIDATES:
            if os.path.exists(cand):
                cindex.Config.set_library_file(cand)
                break
    try:
        index = cindex.Index.create()
    except Exception as e:  # cindex raises LibclangError
        raise FrontendUnavailable(f"libclang shared library: {e}") from e
    return cindex, index


def libclang_version(cindex) -> str:
    try:
        raw = cindex.conf.lib.clang_getClangVersion()
        return cindex.conf.lib.clang_getCString(raw).decode() \
            if not isinstance(raw, str) else raw
    except Exception:
        return "unknown"


def _check_version(cindex) -> str:
    ver = libclang_version(cindex)
    m = re.search(r"clang version (\d+)", ver)
    if m and int(m.group(1)) not in SUPPORTED_LIBCLANG_MAJORS:
        raise FrontendUnavailable(
            f"libclang major {m.group(1)} is not in the supported set "
            f"{SUPPORTED_LIBCLANG_MAJORS}; pin one of those")
    return ver


def _compile_args(compile_commands: str | None) -> list[str]:
    """Union of include/-D/-std flags from compile_commands.json so
    headers (which have no compile command) parse standalone."""
    args: list[str] = []
    seen: set[str] = set()
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            entries = json.load(f)
        for entry in entries:
            cmd = entry.get("command")
            parts = cmd.split() if cmd else entry.get("arguments", [])
            it = iter(range(len(parts)))
            for i in it:
                p = parts[i]
                if p in ("-I", "-isystem", "-D") and i + 1 < len(parts):
                    pair = p + parts[i + 1]
                    if pair not in seen:
                        seen.add(pair)
                        args += [p, parts[i + 1]]
                elif p.startswith(("-I", "-isystem", "-D", "-std=")):
                    if p not in seen:
                        seen.add(p)
                        args.append(p)
    if not any(a.startswith("-std=") for a in args):
        args.append("-std=c++20")
    return args


_RNG_TYPE_RE = re.compile(
    r"\b(mt19937(_64)?|default_random_engine|minstd_rand0?|"
    r"ranlux24|ranlux48|knuth_b|Rng)\b")

_SCHEDULE_FNS = {"schedule", "scheduleAt", "every"}


class _Lowerer:
    def __init__(self, cindex, rel: str):
        self.cindex = cindex
        self.K = cindex.CursorKind
        self.model = FileModel(
            path=rel, is_header=rel.endswith((".hh", ".h", ".hpp")))

    def _tok(self, ctok) -> Token:
        kind = {
            "IDENTIFIER": "id",
            "KEYWORD": "id",
            "LITERAL": "num",
            "PUNCTUATION": "punct",
            "COMMENT": "punct",
        }.get(ctok.kind.name, "punct")
        text = ctok.spelling
        if kind == "num" and text.startswith(('"', "'")):
            kind = "str" if text.startswith('"') else "chr"
        return Token(kind, text, ctok.location.line)

    def _qname(self, cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind != self.K.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _access(self, cursor) -> str:
        acc = cursor.access_specifier
        name = getattr(acc, "name", "NONE").lower()
        return name if name in ("public", "private", "protected") \
            else "free"

    def lower_tu(self, tu, abs_path: str) -> FileModel:
        # Whole-file token stream for the pattern rules.
        K = self.K
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None or \
                    os.path.realpath(loc.file.name) != abs_path:
                continue
            if cur.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                            K.DESTRUCTOR, K.CONVERSION_FUNCTION,
                            K.FUNCTION_TEMPLATE):
                self._lower_function(cur)
            elif cur.kind == K.FIELD_DECL:
                owner = cur.semantic_parent.spelling or "<anon>"
                self.model.members[f"{owner}::{cur.spelling}"] = \
                    cur.type.spelling
        ext = tu.get_extent(
            abs_path, ((1, 1), (1 << 24, 1)))
        self.model.tokens = [self._tok(t) for t in tu.get_tokens(extent=ext)]
        return self.model

    def _lower_function(self, cur, parent_fn: Function | None = None,
                        event_handler: bool = False) -> None:
        K = self.K
        body = None
        for ch in cur.get_children():
            if ch.kind == K.COMPOUND_STMT:
                body = ch
        params = [
            Param(name=a.spelling or "", type_str=a.type.spelling,
                  line=a.location.line)
            for a in cur.get_arguments()
        ]
        fn = Function(
            qname=self._qname(cur) or f"<fn@{cur.location.line}>",
            name=cur.spelling or f"<fn@{cur.location.line}>",
            file=self.model.path,
            line=cur.location.line,
            return_type=cur.result_type.spelling
            if cur.result_type else "",
            params=params,
            access=self._access(cur),
            is_header=self.model.is_header,
            is_lambda=(cur.kind == K.LAMBDA_EXPR),
            is_event_handler=event_handler,
            parent=parent_fn.qname if parent_fn else None,
        )
        if parent_fn is not None:
            fn.qname = f"{parent_fn.qname}::<lambda@{cur.location.line}>"
            fn.name = f"<lambda@{cur.location.line}>"
            fn.decls.update(parent_fn.decls)
        for p in params:
            if p.name:
                fn.decls[p.name] = p.type_str
        owner = cur.semantic_parent
        if owner is not None and owner.kind in (
                K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
            prefix = (owner.spelling or "") + "::"
            for key, ty in self.model.members.items():
                if key.startswith(prefix):
                    fn.decls.setdefault(key[len(prefix):], ty)
        if body is not None:
            self._walk_body(body, fn)
            fn.tokens = [self._tok(t) for t in body.get_tokens()]
        self.model.functions.append(fn)

    def _walk_body(self, node, fn: Function) -> None:
        K = self.K
        for ch in node.get_children():
            kind = ch.kind
            if kind == K.LAMBDA_EXPR:
                self._lower_function(ch, parent_fn=fn)
                continue
            if kind == K.VAR_DECL:
                fn.decls[ch.spelling] = ch.type.spelling
                if _RNG_TYPE_RE.search(ch.type.spelling):
                    has_args = any(
                        gc.kind != K.TYPE_REF
                        for gc in ch.get_children())
                    fn.decls[f"<rng-args:{ch.spelling}>"] = \
                        "yes" if has_args else "no"
                    fn.decls[f"<rng-line:{ch.spelling}>"] = \
                        str(ch.location.line)
            elif kind == K.CXX_FOR_RANGE_STMT:
                kids = list(ch.get_children())
                # children: loop var decl, range init expr, body.
                if len(kids) >= 2:
                    rng = kids[-2]
                    fn.range_fors.append(RangeFor(
                        expr_name=rng.spelling or "",
                        expr_type=rng.type.spelling,
                        line=ch.location.line))
            elif kind == K.CALL_EXPR:
                if ch.spelling:
                    fn.calls.append(CallSite(callee=ch.spelling,
                                             line=ch.location.line))
                if ch.spelling in _SCHEDULE_FNS:
                    for gc in ch.walk_preorder():
                        if gc.kind == K.LAMBDA_EXPR:
                            self._lower_function(
                                gc, parent_fn=fn, event_handler=True)
            self._walk_body(ch, fn)


def parse_tree(src_root: str, repo_root: str,
               compile_commands: str | None,
               files: list[str]) -> tuple[list[FileModel], str]:
    """Parse @p files (absolute paths) -> (models, version string)."""
    cindex, index = _load_cindex()
    version = _check_version(cindex)
    args = _compile_args(compile_commands)
    models: list[FileModel] = []
    errors: list[str] = []
    for abs_path in files:
        rel = os.path.relpath(abs_path, repo_root).replace(os.sep, "/")
        try:
            tu = index.parse(
                abs_path, args=args + ["-xc++"],
                options=cindex.TranslationUnit
                .PARSE_DETAILED_PROCESSING_RECORD)
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                raise RuntimeError(
                    "; ".join(d.spelling for d in fatal[:3]))
            models.append(
                _Lowerer(cindex, rel).lower_tu(
                    tu, os.path.realpath(abs_path)))
        except Exception as e:  # noqa: BLE001 — per-file isolation
            errors.append(f"{rel}: {e}")
    if errors:
        raise FrontendUnavailable(
            "clang frontend failed on "
            f"{len(errors)} file(s): " + "; ".join(errors[:5]))
    return models, version
