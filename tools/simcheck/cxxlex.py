"""Comment- and string-literal-aware C++ tokenizer.

The regex lint (tools/lint_sim.py) works line-by-line and cannot see
multi-line constructs or distinguish `//` inside a string literal from
a comment. simcheck rules run on a token stream instead: comments are
dropped, string/char literals survive as single STR/CHR tokens, and
every token carries its 1-based source line for reporting.

This is a lexer, not a preprocessor: macros are not expanded and
`#include`s are not followed. Directive lines are emitted as a single
DIRECTIVE token so rules can still see e.g. `#include <iostream>`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds.
ID = "id"
NUM = "num"
STR = "str"
CHR = "chr"
PUNCT = "punct"
DIRECTIVE = "directive"

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-fA-F'.xXbBuUlLfF]|[eEpP][+-]?)*")
# Longest-first multi-char operators; single chars fall through.
_PUNCT_RE = re.compile(
    r"<<=|>>=|\.\.\.|->\*|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|"
    r"\*=|/=|%=|&=|\|=|\^=|=|[{}()\[\];,<>:?~!%^&*+/.|-]"
)


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact for test failure output
        return f"{self.kind}:{self.text}@{self.line}"


class LexError(Exception):
    pass


def tokenize(text: str) -> list[Token]:
    """Lex C++ source into tokens; comments removed, literals opaque."""
    toks: list[Token] = []
    i = 0
    n = len(text)
    line = 1

    def bump_lines(s: str) -> None:
        nonlocal line
        line += s.count("\n")

    while i < n:
        c = text[i]
        # Whitespace.
        if c in " \t\r\v\f":
            i += 1
            continue
        if c == "\n":
            line += 1
            i += 1
            continue
        # Preprocessor directive: consume to end of (continued) line.
        if c == "#" and (not toks or toks[-1].line != line):
            j = i
            while j < n:
                if text[j] == "\n" and text[j - 1] != "\\":
                    break
                j += 1
            chunk = text[i:j]
            toks.append(Token(DIRECTIVE, re.sub(r"\s+", " ", chunk).strip(), line))
            bump_lines(chunk)
            i = j
            continue
        # Line comment.
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        # Block comment.
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                bump_lines(text[i:])
                i = n
            else:
                bump_lines(text[i : j + 2])
                i = j + 2
            continue
        # Raw string literal: R"delim( ... )delim".
        m = re.match(r'(?:u8|[uUL])?R"([^()\\ \t\n]{0,16})\(', text[i:])
        if m:
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            if j < 0:
                raise LexError(f"unterminated raw string at line {line}")
            chunk = text[i : j + len(closer)]
            toks.append(Token(STR, chunk, line))
            bump_lines(chunk)
            i = j + len(closer)
            continue
        # String / char literal with escapes (possibly prefixed).
        m = re.match(r'(?:u8|[uUL])?(["\'])', text[i:])
        if m:
            quote = m.group(1)
            j = i + m.end()
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    break  # unterminated on this line; be forgiving
                j += 1
            chunk = text[i : j + 1] if j < n else text[i:]
            toks.append(Token(STR if quote == '"' else CHR, chunk, line))
            i = j + 1 if j < n else n
            continue
        # Number.
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            assert m is not None
            toks.append(Token(NUM, m.group(0), line))
            i = m.end()
            continue
        # Identifier / keyword.
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Token(ID, m.group(0), line))
            i = m.end()
            continue
        # Punctuation / operators.
        m = _PUNCT_RE.match(text, i)
        if m:
            toks.append(Token(PUNCT, m.group(0), line))
            i = m.end()
            continue
        # Unknown byte (e.g. stray backslash): skip it.
        i += 1
    return toks


def match_seq(toks: list[Token], start: int, pattern: list[str]) -> bool:
    """True when token texts at @p start equal @p pattern ('*' = any)."""
    if start + len(pattern) > len(toks):
        return False
    return all(p == "*" or toks[start + k].text == p for k, p in enumerate(pattern))


def find_matching(toks: list[Token], start: int, open_t: str, close_t: str) -> int:
    """Index of the token closing the bracket at @p start, or -1."""
    assert toks[start].text == open_t
    depth = 0
    for j in range(start, len(toks)):
        t = toks[j].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return j
    return -1
