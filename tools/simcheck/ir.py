"""Frontend-neutral semantic model shared by every simcheck rule.

Both frontends (clang.cindex and the built-in parser) lower a
translation unit to this IR; rules only ever see the IR, so each rule
is written once and behaves identically under either frontend.

The model is deliberately small — it carries exactly what the rules
need: functions with parameter/return types and access, variable
declarations with textual types, range-for statements, call edges by
callee name, and the raw token stream for pattern rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cxxlex import Token


@dataclass
class Param:
    name: str
    type_str: str  # normalized textual type, e.g. "double", "const Foo *"
    line: int


@dataclass
class VarDecl:
    """A named variable with a textual type: local, member, or param."""

    name: str
    type_str: str
    line: int


@dataclass
class RangeFor:
    """`for (decl : expr)` — expr_name is the iterated entity if it is a
    simple identifier / member access, else ''."""

    expr_name: str
    expr_type: str  # resolved type when known, else ''
    line: int


@dataclass
class CallSite:
    callee: str  # unqualified callee name
    line: int


@dataclass
class Function:
    """A function definition (or lambda) with its analyzed body."""

    qname: str  # qualified, e.g. charllm::net::FlowNetwork::recompute
    name: str  # unqualified
    file: str  # repo-relative posix path
    line: int
    return_type: str
    params: list[Param] = field(default_factory=list)
    access: str = "free"  # public | protected | private | free
    is_header: bool = False
    is_lambda: bool = False
    is_event_handler: bool = False  # lambda passed to schedule*/every
    parent: str | None = None  # enclosing function qname for lambdas
    tokens: list[Token] = field(default_factory=list)  # body tokens
    decls: dict[str, str] = field(default_factory=dict)  # name -> type
    range_fors: list[RangeFor] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    def callee_names(self) -> set[str]:
        return {c.callee for c in self.calls}


@dataclass
class FileModel:
    """Everything simcheck knows about one source file."""

    path: str  # repo-relative posix path
    is_header: bool
    tokens: list[Token] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    # Class/struct member variables: "Class::member" -> type string.
    members: dict[str, str] = field(default_factory=dict)


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    snippet: str
    function: str = ""
    suppressed: bool = False
    allow_key: str = ""  # allowlist entry that suppressed it

    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "allow_key": self.allow_key,
        }
