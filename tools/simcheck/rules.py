"""simcheck rules: the simulator's semantic contracts over the IR.

Three families, mirroring the contracts in DESIGN.md §5/§6:

Determinism ("same seed -> byte-identical telemetry"):
  det-unordered-iter     iteration over std::unordered_{map,set} —
                         iteration order is hash/allocation dependent
  det-pointer-key        ordered container keyed by pointer value —
                         ordering depends on allocator addresses
  det-pointer-compare    relational comparison of two pointers (or
                         default-compare sort of a pointer vector)
  det-unseeded-rng       RNG engine constructed with no seed argument;
                         seeds must flow from config structs

Unit soundness (common/quantity.hh, now enforced across ALL of src/):
  unit-raw-double        unit-suffixed (_w/_j/_c/_bps/_s) parameter,
                         return, member, or local held in plain double
  unit-value-escape      public header function returning a raw
                         Quantity::value() double across the API

Hot-path allocation (by reachability, not directory):
  hot-alloc              heap-allocating construct in a function
                         statically reachable from EventQueue dispatch
                         or the FlowNetwork solve entry points
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ir import FileModel, Finding, Function

UNORDERED_RE = re.compile(r"\bunordered_(map|set|multimap|multiset)\b")
ORDERED_ASSOC_RE = re.compile(
    r"(?:\bstd\s*::\s*)?\b(map|set|multimap|multiset)\s*<")
RNG_NO_SEED_MSG = (
    "RNG engine constructed without a seed; seeds must flow from an "
    "explicit config field (see common/rng.hh)")

UNIT_SUFFIX_RE = re.compile(r"_(w|j|c|bps|s)$")

HEAP_TOKENS = {
    "make_shared": "std::make_shared allocates a control block per call",
    "make_unique": "std::make_unique heap-allocates per call",
    "push_back": "container growth can reallocate on the hot path",
    "emplace_back": "container growth can reallocate on the hot path",
    "resize": "resize can reallocate on the hot path",
    "reserve": "reserve allocates on the hot path",
}

# Default reachability roots: EventQueue dispatch + FlowNetwork solve
# entry points, plus every lambda handed to the scheduling API (those
# are the event bodies the dispatcher actually runs).
DEFAULT_HOT_ROOTS = [
    "EventQueue::runOne",
    "EventQueue::runUntil",
    "EventQueue::peekNext",
    "FlowNetwork::startFlow",
    "FlowNetwork::progress",
    "FlowNetwork::recompute",
    "FlowNetwork::onCompletionEvent",
    "Simulator::dispatchNext",
    # Critical-path recorder entry points: called from op-completion
    # event handlers, so they sit on the dispatch path whenever
    # tracing is enabled. Slab growth past the reserve is the only
    # sanctioned allocation (see allowlist).
    "CriticalPathRecorder::onComputeDone",
    "CriticalPathRecorder::onCollectiveDone",
    "CriticalPathRecorder::onP2PDone",
    "CriticalPathRecorder::beginIteration",
    "CriticalPathRecorder::endIteration",
]


@dataclass
class RuleConfig:
    hot_roots: list[str] = field(default_factory=lambda: list(DEFAULT_HOT_ROOTS))
    # Value-escape boundary dirs where .value() returns are the point
    # (CSV/trace/NVML writers) — scoped out of unit-value-escape.
    value_boundary_dirs: tuple = ()


RULES = [
    ("det-unordered-iter",
     "iteration over an unordered associative container"),
    ("det-pointer-key",
     "ordered container keyed by pointer value"),
    ("det-pointer-compare",
     "relational comparison of pointer values used for ordering"),
    ("det-unseeded-rng",
     "RNG engine constructed without an explicit seed"),
    ("unit-raw-double",
     "unit-suffixed raw double parameter/return/member"),
    ("unit-value-escape",
     "public header API returning Quantity::value() as raw double"),
    ("hot-alloc",
     "heap allocation reachable from event dispatch / flow solve"),
]


def _snippet(fm: FileModel, line: int, source_lines: list[str]) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


class Analyzer:
    def __init__(self, models: list[FileModel],
                 sources: dict[str, list[str]],
                 config: RuleConfig | None = None):
        self.models = models
        self.sources = sources  # path -> source lines (for snippets)
        self.config = config or RuleConfig()
        self.findings: list[Finding] = []

    # -- helpers --------------------------------------------------------

    def _emit(self, rule: str, fm: FileModel, line: int, message: str,
              function: str = "") -> None:
        self.findings.append(Finding(
            rule=rule, file=fm.path, line=line, message=message,
            snippet=_snippet(fm, line, self.sources.get(fm.path, [])),
            function=function))

    def run(self, only_rules: set[str] | None = None) -> list[Finding]:
        checks = {
            "det-unordered-iter": self.check_unordered_iter,
            "det-pointer-key": self.check_pointer_key,
            "det-pointer-compare": self.check_pointer_compare,
            "det-unseeded-rng": self.check_unseeded_rng,
            "unit-raw-double": self.check_unit_raw_double,
            "unit-value-escape": self.check_value_escape,
            "hot-alloc": self.check_hot_alloc,
        }
        for rule, fn in checks.items():
            if only_rules is None or rule in only_rules:
                fn()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule))
        return self.findings

    # -- determinism ----------------------------------------------------

    def check_unordered_iter(self) -> None:
        for fm in self.models:
            for fn in fm.functions:
                for rf in fn.range_fors:
                    if UNORDERED_RE.search(rf.expr_type):
                        self._emit(
                            "det-unordered-iter", fm, rf.line,
                            f"range-for over '{rf.expr_name}' "
                            f"({rf.expr_type}): unordered iteration "
                            "order is not deterministic across "
                            "implementations; use a sorted container "
                            "or an index-ordered loop",
                            fn.qname)
                # .begin()/.cbegin() on an unordered container.
                toks = fn.tokens
                for i, t in enumerate(toks):
                    if t.text in ("begin", "cbegin") and i >= 2 and \
                            toks[i - 1].text in (".", "->") and \
                            toks[i - 2].kind == "id":
                        ty = fn.decls.get(toks[i - 2].text, "")
                        if UNORDERED_RE.search(ty):
                            self._emit(
                                "det-unordered-iter", fm, t.line,
                                f"iterator over '{toks[i - 2].text}' "
                                f"({ty}): unordered iteration order is "
                                "not deterministic",
                                fn.qname)

    def check_pointer_key(self) -> None:
        def first_template_arg(ty: str) -> str:
            m = ORDERED_ASSOC_RE.search(ty)
            if not m:
                return ""
            rest = ty[m.end():]
            depth = 0
            for i, ch in enumerate(rest):
                if ch == "<":
                    depth += 1
                elif ch == ">" and depth == 0:
                    return rest[:i].strip()
                elif ch == ">":
                    depth -= 1
                elif ch == "," and depth == 0:
                    return rest[:i].strip()
            return rest.strip()

        for fm in self.models:
            seen: set[tuple[str, int]] = set()

            def scan(name: str, ty: str, line: int, where: str) -> None:
                # Ignore unordered here; det-unordered-iter owns those.
                if UNORDERED_RE.search(ty):
                    return
                key = first_template_arg(ty)
                if key.endswith("*"):
                    loc = (ty, line)
                    if loc in seen:
                        return
                    seen.add(loc)
                    self._emit(
                        "det-pointer-key", fm, line,
                        f"'{name}' is an ordered container keyed by "
                        f"pointer ({ty}): iteration order follows "
                        "allocator addresses; key by a stable id",
                        where)

            for mname, mty in fm.members.items():
                # Member lines are not tracked; find the decl line from
                # any function that inherited it, else report line 1.
                scan(mname, mty, self._member_line(fm, mname), "")
            for fn in fm.functions:
                for name, ty in fn.decls.items():
                    if name.startswith("<"):
                        continue
                    scan(name, ty, fn.line, fn.qname)

    def _member_line(self, fm: FileModel, member: str) -> int:
        # Best-effort: grep the source for the member name.
        name = member.split("::")[-1]
        for i, src_line in enumerate(self.sources.get(fm.path, []), 1):
            if name in src_line and (";" in src_line or "=" in src_line) \
                    and ORDERED_ASSOC_RE.search(src_line):
                return i
        return 1

    def check_pointer_compare(self) -> None:
        for fm in self.models:
            for fn in fm.functions:
                toks = fn.tokens
                for i, t in enumerate(toks):
                    if t.text not in ("<", ">", "<=", ">="):
                        continue
                    if i == 0 or i + 1 >= len(toks):
                        continue
                    lhs, rhs = toks[i - 1], toks[i + 1]
                    if lhs.kind != "id" or rhs.kind != "id":
                        continue
                    lty = fn.decls.get(lhs.text, "")
                    rty = fn.decls.get(rhs.text, "")
                    if lty.rstrip("const ").endswith("*") and \
                            rty.rstrip("const ").endswith("*"):
                        self._emit(
                            "det-pointer-compare", fm, t.line,
                            f"ordering '{lhs.text} {t.text} {rhs.text}' "
                            "compares pointer values; addresses vary "
                            "run-to-run — compare stable ids instead",
                            fn.qname)
                # std::sort(v.begin(), v.end()) on vector<T*> without a
                # comparator.
                for i, t in enumerate(toks):
                    if t.text != "sort":
                        continue
                    if i + 1 >= len(toks) or toks[i + 1].text != "(":
                        continue
                    # First arg: name.begin()
                    if i + 2 < len(toks) and toks[i + 2].kind == "id":
                        base = toks[i + 2].text
                        ty = fn.decls.get(base, "")
                        if re.search(r"\bvector\s*<[^>]*\*\s*>", ty):
                            # Count top-level commas to detect a custom
                            # comparator (3rd argument).
                            from cxxlex import find_matching
                            close = find_matching(toks, i + 1, "(", ")")
                            commas = 0
                            depth = 0
                            for j in range(i + 2, close):
                                tt = toks[j].text
                                if tt in ("(", "[", "{"):
                                    depth += 1
                                elif tt in (")", "]", "}"):
                                    depth -= 1
                                elif tt == "," and depth == 0:
                                    commas += 1
                            if commas <= 1:
                                self._emit(
                                    "det-pointer-compare", fm, t.line,
                                    f"std::sort of '{base}' ({ty}) with "
                                    "the default comparator orders by "
                                    "pointer value; sort by a stable key",
                                    fn.qname)

    def check_unseeded_rng(self) -> None:
        for fm in self.models:
            for fn in fm.functions:
                for name, val in list(fn.decls.items()):
                    if not name.startswith("<rng-args:"):
                        continue
                    if val == "yes":
                        continue
                    var = name[len("<rng-args:"):-1]
                    line = int(fn.decls.get(f"<rng-line:{var}>", fn.line))
                    self._emit("det-unseeded-rng", fm, line,
                               f"'{var}': {RNG_NO_SEED_MSG}", fn.qname)

    # -- unit soundness -------------------------------------------------

    def check_unit_raw_double(self) -> None:
        """Token-stream scan so prototypes, members, and locals are all
        covered (in every file under src/, not just physics headers)."""
        for fm in self.models:
            toks = fm.tokens
            for i, t in enumerate(toks):
                if t.text != "double":
                    continue
                # double <id>_suffix   followed by , ) = ; ( {
                j = i + 1
                while j < len(toks) and toks[j].text in ("&", "*", "const"):
                    j += 1
                if j >= len(toks) or toks[j].kind != "id":
                    continue
                name = toks[j].text
                if not UNIT_SUFFIX_RE.search(name):
                    continue
                nxt = toks[j + 1].text if j + 1 < len(toks) else ""
                if nxt == "(":
                    self._emit(
                        "unit-raw-double", fm, toks[j].line,
                        f"'{name}' returns a unit-carrying value as raw "
                        "double; return the typed quantity "
                        "(common/quantity.hh)")
                elif nxt in (",", ")", "=", ";", "{"):
                    self._emit(
                        "unit-raw-double", fm, toks[j].line,
                        f"'{name}' holds a unit-carrying value in raw "
                        "double; use the typed quantity "
                        "(common/quantity.hh)")

    def check_value_escape(self) -> None:
        for fm in self.models:
            if not fm.is_header:
                continue
            if fm.path.startswith(self.config.value_boundary_dirs or ()):
                continue
            for fn in fm.functions:
                if fn.is_lambda or fn.access not in ("public", "free"):
                    continue
                if fn.return_type.replace("const", "").strip() != "double":
                    continue
                toks = fn.tokens
                for i, t in enumerate(toks):
                    if t.text != "return":
                        continue
                    # return <expr> . value ( ) ;
                    j = i + 1
                    depth = 0
                    hit_line = None
                    while j < len(toks):
                        tt = toks[j].text
                        if tt in ("(", "[", "{"):
                            depth += 1
                        elif tt in (")", "]", "}"):
                            depth -= 1
                        elif tt == ";" and depth <= 0:
                            break
                        if tt == "value" and j >= 1 and \
                                toks[j - 1].text in (".", "->") and \
                                j + 1 < len(toks) and \
                                toks[j + 1].text == "(":
                            hit_line = toks[j].line
                        j += 1
                    if hit_line is not None:
                        self._emit(
                            "unit-value-escape", fm, hit_line,
                            f"public API '{fn.name}' returns "
                            "Quantity::value() as raw double, dropping "
                            "the unit at the call boundary; return the "
                            "typed quantity (escape hatches belong at "
                            "CSV/trace/NVML writers)",
                            fn.qname)

    # -- hot-path allocation --------------------------------------------

    def check_hot_alloc(self) -> None:
        by_name: dict[str, list[Function]] = {}
        by_qname: dict[str, Function] = {}
        for fm in self.models:
            for fn in fm.functions:
                by_name.setdefault(fn.name, []).append(fn)
                by_qname[fn.qname] = fn

        roots: list[Function] = []
        for fn in by_qname.values():
            if fn.is_event_handler:
                roots.append(fn)
            else:
                for root_pat in self.config.hot_roots:
                    if fn.qname.endswith(root_pat):
                        roots.append(fn)
                        break

        # BFS over the name-resolved call graph, src-defined only.
        reachable: set[str] = set()
        frontier = list(roots)
        while frontier:
            fn = frontier.pop()
            if fn.qname in reachable:
                continue
            reachable.add(fn.qname)
            for callee in fn.callee_names():
                for target in by_name.get(callee, []):
                    if target.qname not in reachable:
                        frontier.append(target)
            # A lambda defined inside a reachable function runs (at the
            # latest) when that function invokes or schedules it.
            for cand in by_qname.values():
                if cand.parent == fn.qname and cand.qname not in reachable:
                    frontier.append(cand)

        for fm in self.models:
            for fn in fm.functions:
                if fn.qname not in reachable:
                    continue
                toks = fn.tokens
                for i, t in enumerate(toks):
                    reason = None
                    if t.text == "new":
                        # `new` as operator-new definitions or
                        # placement-new are still allocations from the
                        # rule's perspective; delete-expressions not.
                        reason = "operator new allocates per call"
                    elif t.text in HEAP_TOKENS:
                        if i + 1 < len(toks) and toks[i + 1].text == "(":
                            reason = HEAP_TOKENS[t.text]
                    elif t.text == "function" and i >= 2 and \
                            toks[i - 1].text == "::" and \
                            toks[i - 2].text == "std":
                        reason = ("std::function may heap-allocate "
                                  "captured state")
                    if reason:
                        self._emit(
                            "hot-alloc", fm, t.line,
                            f"{reason} (reachable from "
                            "event dispatch / flow solve; keep the "
                            "per-event path allocation-free)",
                            fn.qname)
