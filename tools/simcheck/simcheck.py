#!/usr/bin/env python3
"""simcheck — AST-level simulation contract checker.

Enforces the simulator's semantic contracts where the regex lint
(tools/lint_sim.py) can't see: container iteration semantics, pointer
ordering, RNG seeding, unit-suffixed raw doubles across all of src/,
Quantity::value() escapes on public APIs, and hot-path allocation by
call-graph reachability from event dispatch / flow solve.

Frontends (--frontend):
  auto      libclang (clang.cindex over compile_commands.json) when
            installed and version-pinned, else the built-in parser
  clang     force libclang; error out if unavailable
  internal  force the built-in token/structure parser (no deps)

Suppressions live in tools/simcheck/allowlist.txt, one per line:
    <rule>:<path-substring>:<line-substring>
('*' as rule matches every rule.) --check-allowlist exits nonzero when
any entry no longer suppresses a finding, so suppressions cannot rot.

Exit status: 0 clean, 1 findings (or stale allowlist), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import internal_frontend  # noqa: E402
from ir import FileModel, Finding  # noqa: E402
from rules import DEFAULT_HOT_ROOTS, RULES, Analyzer, RuleConfig  # noqa: E402

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
CXX_SUFFIXES = (".hh", ".h", ".cc", ".cpp", ".hpp")

SCHEMA_VERSION = 1


def collect_files(src_root: str) -> list[str]:
    out = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(CXX_SUFFIXES):
                out.append(os.path.join(dirpath, name))
    out.sort()
    return out


def load_allowlist(path: str) -> list[tuple[str, str, str]]:
    entries: list[tuple[str, str, str]] = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) != 3:
                print(f"simcheck: malformed allowlist entry: {line!r} "
                      "(want <rule>:<path-sub>:<line-sub>)",
                      file=sys.stderr)
                sys.exit(2)
            entries.append((parts[0], parts[1], parts[2]))
    return entries


def apply_allowlist(findings: list[Finding],
                    entries: list[tuple[str, str, str]],
                    sources: dict[str, list[str]]) -> dict[str, int]:
    """Mark suppressed findings; return per-entry hit counts."""
    hits = {f"{r}:{p}:{s}": 0 for r, p, s in entries}
    for f in findings:
        src_lines = sources.get(f.file, [])
        line_text = src_lines[f.line - 1] if 0 < f.line <= len(src_lines) \
            else f.snippet
        for r, p, s in entries:
            if r not in ("*", f.rule):
                continue
            if p in f.file and s in line_text:
                f.suppressed = True
                f.allow_key = f"{r}:{p}:{s}"
                hits[f.allow_key] += 1
                break
    return hits


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="simcheck", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--src", default=os.path.join(REPO, "src"),
                    help="source tree to analyze (default: repo src/)")
    ap.add_argument("--repo-root", default=REPO,
                    help="root for repo-relative paths in reports")
    ap.add_argument("--compile-commands",
                    default=os.path.join(REPO, "build",
                                         "compile_commands.json"),
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--frontend", choices=("auto", "clang", "internal"),
                    default="auto")
    ap.add_argument("--allowlist",
                    default=os.path.join(REPO, "tools", "simcheck",
                                         "allowlist.txt"))
    ap.add_argument("--json", metavar="PATH",
                    help="write machine-readable findings JSON")
    ap.add_argument("--rules", metavar="R1,R2",
                    help="run only these rules (comma-separated)")
    ap.add_argument("--hot-roots", metavar="PAT1,PAT2",
                    help="override hot-path reachability roots "
                         "(qname suffixes; fixtures use this)")
    ap.add_argument("--check-allowlist", action="store_true",
                    help="fail if any allowlist entry is stale")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES:
            print(f"{rule:22s} {desc}")
        return 0

    src_root = os.path.abspath(args.src)
    if not os.path.isdir(src_root):
        print(f"simcheck: source tree not found: {src_root}",
              file=sys.stderr)
        return 2
    files = collect_files(src_root)
    if not files:
        print(f"simcheck: no C++ sources under {src_root}",
              file=sys.stderr)
        return 2

    repo_root = os.path.abspath(args.repo_root)
    frontend_used = "internal"
    frontend_version = f"builtin (python {sys.version.split()[0]})"
    models: list[FileModel] = []

    if args.frontend in ("auto", "clang"):
        try:
            import clang_frontend
            models, frontend_version = clang_frontend.parse_tree(
                src_root, repo_root, args.compile_commands, files)
            frontend_used = "clang"
        except clang_frontend.FrontendUnavailable as e:
            if args.frontend == "clang":
                print(f"simcheck: clang frontend unavailable: {e}",
                      file=sys.stderr)
                return 2
            print(f"simcheck: note: {e}; using internal frontend",
                  file=sys.stderr)

    if not models:
        for path in files:
            rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
            models.append(internal_frontend.parse_file(path, rel))

    sources: dict[str, list[str]] = {}
    for path in files:
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            sources[rel] = f.read().splitlines()

    config = RuleConfig()
    if args.hot_roots:
        config.hot_roots = [p for p in args.hot_roots.split(",") if p]
    only = set(args.rules.split(",")) if args.rules else None
    if only:
        known = {r for r, _ in RULES}
        bad = only - known
        if bad:
            print(f"simcheck: unknown rule(s): {', '.join(sorted(bad))}",
                  file=sys.stderr)
            return 2

    analyzer = Analyzer(models, sources, config)
    findings = analyzer.run(only)

    entries = load_allowlist(args.allowlist)
    hits = apply_allowlist(findings, entries, sources)

    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    stale = [key for key, n in hits.items() if n == 0]

    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "tool": "simcheck",
            "frontend": frontend_used,
            "frontend_version": frontend_version,
            "src_root": os.path.relpath(src_root, repo_root),
            "files_analyzed": len(files),
            "rules": [{"id": r, "description": d} for r, d in RULES],
            "findings": [f.to_json() for f in findings],
            "summary": {
                "active": len(active),
                "suppressed": len(suppressed),
                "stale_allowlist_entries": stale,
            },
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")

    for f in active:
        print(f"{f.location()}: [{f.rule}] {f.message}")
        if f.function:
            print(f"    in {f.function}")
        if f.snippet:
            print(f"    {f.snippet}")

    status = 0
    if active:
        print(f"\nsimcheck: {len(active)} finding(s) "
              f"({len(suppressed)} suppressed) "
              f"[frontend={frontend_used}]")
        print("Sanctioned exceptions go in tools/simcheck/allowlist.txt "
              "(<rule>:<path-substring>:<line-substring>).")
        status = 1
    else:
        print(f"simcheck: clean ({len(files)} files, "
              f"{len(suppressed)} suppressed) "
              f"[frontend={frontend_used}]")

    if args.check_allowlist and stale:
        print("\nsimcheck: stale allowlist entries (no longer match "
              "any finding):", file=sys.stderr)
        for key in stale:
            print(f"    {key}", file=sys.stderr)
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
