#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace JSON produced by the simulator.

Checks, in order:

1. The file parses as JSON and has the Chrome trace shape: a top-level
   object with a "traceEvents" list.
2. Every event is an object with a string "name", a string one-char
   "ph", and integer "pid"; X and C events also carry a numeric "ts".
3. Duration ("X") events have non-negative "dur", and within one
   (pid, tid) track the emitted spans are sorted by start time — the
   builder's per-device ordering contract.
4. Counter ("C") events carry args.value and are time-sorted within
   one (pid, name) counter track.

5. If the document carries a top-level "schemaVersion", it must be 2
   (the current builder schema: one run-process thread per span
   category).

Optional content requirements (for CI acceptance gating):
    --require-kernels     at least one X event outside the fault rows
    --require-counters=a,b,c
                          each named counter track must exist with at
                          least one sample (e.g. power_w,temp_c)
    --require-fault-rows  at least one X event with cat == "fault"
    --require-critical-path
                          at least one X event with
                          cat == "critical_path" (the causal
                          critical-path track), and schemaVersion 2
                          must be stamped

Exit status: 0 valid, 1 validation failure, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to the trace JSON")
    ap.add_argument("--require-kernels", action="store_true",
                    help="require at least one non-fault X event")
    ap.add_argument("--require-counters", default="",
                    help="comma-separated counter names that must "
                         "each have at least one sample")
    ap.add_argument("--require-fault-rows", action="store_true",
                    help="require at least one cat=fault X event")
    ap.add_argument("--require-critical-path", action="store_true",
                    help="require schemaVersion 2 and at least one "
                         "cat=critical_path X event")
    args = ap.parse_args()

    try:
        with open(args.trace, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"validate_trace: cannot read {args.trace}: {e}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' list")
    schema = doc.get("schemaVersion")
    if schema is not None and schema != 2:
        fail(f"schemaVersion is {schema!r}, expected 2")
    if args.require_critical_path and schema != 2:
        fail("critical-path track requires schemaVersion 2, "
             f"got {schema!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not a list")

    span_tracks: dict[tuple, float] = defaultdict(lambda: float("-inf"))
    counter_tracks: dict[tuple, float] = defaultdict(
        lambda: float("-inf"))
    counter_samples: dict[str, int] = defaultdict(int)
    kernel_spans = 0
    fault_spans = 0
    critpath_spans = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
        name = ev.get("name")
        ph = ev.get("ph")
        pid = ev.get("pid")
        if not isinstance(name, str):
            fail(f"{where}: missing/non-string 'name'")
        if not isinstance(ph, str) or len(ph) != 1:
            fail(f"{where}: missing/malformed 'ph'")
        if not isinstance(pid, int):
            fail(f"{where}: missing/non-integer 'pid'")

        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{where}: {ph}-event without numeric 'ts'")

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: X-event with missing/negative 'dur'")
            key = (pid, ev.get("tid"))
            if ts < span_tracks[key]:
                fail(f"{where}: span track pid={pid} tid={key[1]} "
                     f"not sorted by ts ({ts} after "
                     f"{span_tracks[key]})")
            span_tracks[key] = ts
            cat = ev.get("cat")
            if cat == "fault":
                fault_spans += 1
            else:
                kernel_spans += 1
            if cat == "critical_path":
                critpath_spans += 1
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{where}: C-event without args.value")
            key = (pid, name)
            if ts < counter_tracks[key]:
                fail(f"{where}: counter track pid={pid} "
                     f"name={name!r} not sorted by ts")
            counter_tracks[key] = ts
            counter_samples[name] += 1

    if args.require_kernels and kernel_spans == 0:
        fail("no kernel spans (non-fault X events) in trace")
    if args.require_fault_rows and fault_spans == 0:
        fail("no fault-overlay spans (cat=fault) in trace")
    if args.require_critical_path and critpath_spans == 0:
        fail("no critical-path spans (cat=critical_path) in trace")
    for want in filter(None, args.require_counters.split(",")):
        if counter_samples.get(want, 0) == 0:
            fail(f"required counter track {want!r} has no samples")

    print(f"validate_trace: OK: {len(events)} events, "
          f"{kernel_spans} kernel spans, {fault_spans} fault spans, "
          f"{critpath_spans} critical-path spans, "
          f"{len(counter_tracks)} counter tracks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
