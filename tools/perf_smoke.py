#!/usr/bin/env python3
"""Perf smoke gate for the event kernel, flow solver, and sweep runner.

Runs two quick workloads against a Release build:

1. bench_micro_engine (google-benchmark JSON): event-queue throughput
   and flow-solver recompute/contention rates.
2. bench_table2_techniques on the SweepRunner thread pool: end-to-end
   sweep wall-clock, plus the simulator's own self-profiling metrics
   (--metrics= dump: event-queue pops/compactions, flow-solver
   fast-vs-full recomputes, per-task wall-time histogram). The dump's
   core counters must be nonzero — a zero means the instrumentation
   came unwired.
3. bench_backend_xval (DES vs analytical cross-validation): the bench
   itself gates per-metric relative error; this script additionally
   enforces the hard >=100x analytical speedup floor from the bench's
   JSON artifact (the floor is absolute, not baseline-relative).
4. bench_fig22_datacenter_projection --backend=des --symmetry=on:
   mechanistic collapsed-DES runs at logical worlds up to 65536. The
   bench gates byte-determinism and the projector/analytical
   cross-checks itself; this script re-checks the determinism bits in
   the artifact and enforces two absolute collapse contracts: the
   aggregate event rate at the largest world must clear
   COLLAPSED_RATE_FLOOR, and peak RSS must stay under
   FIG22_RSS_CAP_KB (memory O(distinct ranks) — a full instantiation
   of 65536 ranks would blow the cap immediately).

5. bench_micro_engine BM_TrainingIteration/{0,1}: a full DES training
   iteration with causal critical-path tracing disabled vs enabled,
   best-of-3 per arm in one process. The enabled arm must stay within
   CRITPATH_OVERHEAD (2%) of the disabled arm's events/sec; since the
   disabled path is a strict subset of the enabled path's work (one
   null-check branch per hook), this bounds the disabled-path
   overhead too. Both arms also gate baseline-relative.
6. bench_table2_techniques --critical-path= twice: the two attribution
   reports must be byte-identical AND tools/rundiff.py --expect-null
   must report a null diff (a non-null diff on a double run means
   nondeterminism in the tracer or the explainer).

Writes every measurement (plus the committed baseline, the
current/baseline ratios, and the self-profiling counters) to
BENCH_sweep.json so CI can archive the artifact, then fails if any
metric regressed more than --threshold (default 25%) against
tools/perf_baseline.json.

The committed baseline intentionally records a slow reference host; a
failure therefore means a real regression, not runner-to-runner noise.
Regenerate it with --update-baseline after intentional perf changes.

Exit status: 0 pass, 1 regression, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "perf_baseline.json"

# google-benchmark names -> metric keys (items/sec, higher = better).
MICRO_METRICS = {
    "BM_EventQueueScheduleRun/1024": "events_per_sec_1024",
    "BM_EventQueueScheduleRun/16384": "events_per_sec_16384",
    "BM_FlowNetworkContention/512": "flow_contention_per_sec_512",
    "BM_FlowNetworkRecompute/256": "flow_recompute_per_sec_256",
    "BM_CollapsedTrainingIteration/1024": "events_per_sec_world1024",
    "BM_CollapsedTrainingIteration/16384": "events_per_sec_world16384",
    "BM_CollapsedTrainingIteration/65536": "events_per_sec_world65536",
}

# Absolute floor for the collapsed engine's aggregate event rate
# (physical pops x DP multiplicity) at a 65536-GPU logical world —
# the rank-symmetry-collapse contract, not a baseline-relative gate.
COLLAPSED_RATE_FLOOR = 1.0e7

# Peak-RSS ceiling for the mechanistic fig22 runs (KiB). Collapsed
# runs measure ~70 MB; a full instantiation of a 65536-rank world
# would exceed this by orders of magnitude.
FIG22_RSS_CAP_KB = 2_000_000

# Wall-clock metrics (seconds, lower = better).
WALL_METRICS = {"table2_wall_seconds", "fig22_wall_seconds"}

# Allowed fractional events/sec cost of the critical-path recorder,
# enabled vs disabled, same process, best-of-3 per arm (ISSUE 9
# acceptance: the observability layer must be effectively free).
CRITPATH_OVERHEAD = 0.02


def run_micro(build: Path) -> dict[str, float]:
    exe = build / "bench" / "bench_micro_engine"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    flt = "|".join(re.escape(name) for name in MICRO_METRICS)
    out = subprocess.run(
        [str(exe), "--benchmark_format=json",
         f"--benchmark_filter=^({flt})$"],
        capture_output=True, text=True, check=True).stdout
    report = json.loads(out)
    metrics: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        key = MICRO_METRICS.get(bench.get("name", ""))
        if key is not None:
            metrics[key] = float(bench["items_per_second"])
    missing = set(MICRO_METRICS.values()) - set(metrics)
    if missing:
        print(f"perf_smoke: benchmarks missing from report: {missing}",
              file=sys.stderr)
        sys.exit(2)
    return metrics


def _critpath_arms(exe: Path) -> tuple[float, float]:
    """One bench_micro_engine invocation: best-of-3 events/sec for
    BM_TrainingIteration with the recorder off (Arg 0) vs on (Arg 1)."""
    out = subprocess.run(
        [str(exe), "--benchmark_format=json",
         "--benchmark_filter=^BM_TrainingIteration/[01]$",
         "--benchmark_repetitions=3"],
        capture_output=True, text=True, check=True).stdout
    report = json.loads(out)
    best: dict[str, float] = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue
        name = bench.get("name", "").split("/repeat")[0]
        rate = float(bench.get("items_per_second", 0.0))
        best[name] = max(best.get(name, 0.0), rate)
    off = best.get("BM_TrainingIteration/0", 0.0)
    on = best.get("BM_TrainingIteration/1", 0.0)
    if off <= 0.0 or on <= 0.0:
        print("perf_smoke: BM_TrainingIteration arms missing from "
              f"report (got {sorted(best)})", file=sys.stderr)
        sys.exit(2)
    return off, on


def run_critpath_overhead(build: Path) -> dict[str, float]:
    """Gate enabled-vs-disabled critical-path tracing overhead on
    BM_TrainingIteration events/sec. Both arms run in one process so
    host speed cancels; single-invocation scatter on a busy runner
    still reaches a few percent, so a >2% reading is retried (a real
    regression fails every attempt, noise does not repeat)."""
    exe = build / "bench" / "bench_micro_engine"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    attempts = 3
    off = on = 0.0
    for attempt in range(attempts):
        off, on = _critpath_arms(exe)
        if on >= (1.0 - CRITPATH_OVERHEAD) * off:
            break
        print(f"perf_smoke: critical-path overhead attempt "
              f"{attempt + 1}/{attempts}: "
              f"{(1.0 - on / off) * 100.0:.2f}% "
              f"(enabled {on:.4g} vs disabled {off:.4g})")
    else:
        print(f"perf_smoke: critical-path tracing costs "
              f"{(1.0 - on / off) * 100.0:.2f}% events/sec "
              f"(enabled {on:.4g} vs disabled {off:.4g}) on every "
              f"attempt, above the "
              f"{CRITPATH_OVERHEAD * 100.0:.0f}% gate", file=sys.stderr)
        sys.exit(1)
    print(f"perf_smoke: critical-path overhead "
          f"{(1.0 - on / off) * 100.0:+.2f}% "
          f"(enabled {on:.4g} vs disabled {off:.4g} events/sec)")
    return {
        "training_iter_events_per_sec_off": off,
        "training_iter_events_per_sec_on": on,
    }


def run_rundiff_null(build: Path, threads: int, stem: Path) -> None:
    """Double-run bench_table2_techniques with --critical-path and
    require a byte-identical report pair plus a null rundiff."""
    exe = build / "bench" / "bench_table2_techniques"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    paths = [stem.with_suffix(f".critpath{i}.json") for i in (1, 2)]
    for path in paths:
        subprocess.run(
            [str(exe), f"--threads={threads}",
             f"--critical-path={path}"],
            capture_output=True, text=True, check=True)
    if paths[0].read_bytes() != paths[1].read_bytes():
        print("perf_smoke: double-run critical-path reports are not "
              "byte-identical (tracer nondeterminism)", file=sys.stderr)
        sys.exit(1)
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "rundiff.py"),
         str(paths[0]), str(paths[1]), "--expect-null",
         "--json", str(stem.with_suffix(".rundiff.json"))],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("perf_smoke: rundiff on a double-run pair was not null "
              f"(exit {proc.returncode}):", file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        sys.exit(1)
    print("perf_smoke: rundiff double-run pair is null (deterministic)")


# Self-profiling counters that must be nonzero after the table2 sweep
# (a zero means the instrumentation came unwired from the hot path).
REQUIRED_NONZERO_COUNTERS = (
    "sim.events_popped",
    "net.flows_started",
    "net.full_recomputes",
    "sweep.tasks",
)


def run_sweep(build: Path, threads: int,
              metrics_path: Path) -> tuple[dict[str, float], dict]:
    exe = build / "bench" / "bench_table2_techniques"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    start = time.monotonic()
    subprocess.run(
        [str(exe), f"--threads={threads}",
         f"--metrics={metrics_path}"],
        capture_output=True, text=True, check=True)
    wall = {"table2_wall_seconds": time.monotonic() - start}
    try:
        sim_metrics = json.loads(metrics_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke: bad metrics dump {metrics_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    return wall, sim_metrics


# Absolute floor for the analytical backend's speedup over DES on the
# cross-validation presets (the backend's contract, not a baseline).
XVAL_SPEEDUP_FLOOR = 100.0


def run_xval(build: Path, threads: int,
             artifact_path: Path) -> tuple[dict[str, float], dict]:
    exe = build / "bench" / "bench_backend_xval"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    proc = subprocess.run(
        [str(exe), f"--threads={threads}", f"--out={artifact_path}"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("perf_smoke: bench_backend_xval failed "
              f"(exit {proc.returncode}):", file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        sys.exit(1)
    try:
        report = json.loads(artifact_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke: bad xval artifact {artifact_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    return {"backend_xval_speedup": float(report["speedup"])}, report


def run_fig22(build: Path, threads: int,
              artifact_path: Path) -> tuple[dict[str, float], dict]:
    exe = build / "bench" / "bench_fig22_datacenter_projection"
    if not exe.exists():
        print(f"perf_smoke: {exe} not found (build the bench targets)",
              file=sys.stderr)
        sys.exit(2)
    start = time.monotonic()
    proc = subprocess.run(
        [str(exe), f"--threads={threads}", "--backend=des",
         "--symmetry=on", f"--out={artifact_path}"],
        capture_output=True, text=True)
    wall = time.monotonic() - start
    if proc.returncode != 0:
        print("perf_smoke: mechanistic fig22 failed "
              f"(exit {proc.returncode}):", file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        sys.exit(1)
    try:
        report = json.loads(artifact_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke: bad fig22 artifact {artifact_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    runs = report.get("runs", [])
    if not runs:
        print("perf_smoke: fig22 artifact has no runs", file=sys.stderr)
        sys.exit(1)
    problems = []
    for run in runs:
        if not run.get("deterministic", False):
            problems.append(
                f"  world {run.get('world')}: not byte-deterministic")
        if run.get("peak_rss_kb", 0) > FIG22_RSS_CAP_KB:
            problems.append(
                f"  world {run.get('world')}: peak RSS "
                f"{run.get('peak_rss_kb')} KiB exceeds the "
                f"{FIG22_RSS_CAP_KB} KiB collapse cap")
    largest = max(runs, key=lambda r: r.get("world", 0))
    rate = float(largest.get("aggregate_events_per_sec", 0.0))
    if rate < COLLAPSED_RATE_FLOOR:
        problems.append(
            f"  world {largest.get('world')}: aggregate rate "
            f"{rate:.3g} ev/s below the {COLLAPSED_RATE_FLOOR:.0e} "
            "floor")
    if problems:
        print("perf_smoke: mechanistic fig22 contract violations:",
              file=sys.stderr)
        print("\n".join(problems), file=sys.stderr)
        sys.exit(1)
    metrics = {
        "fig22_wall_seconds": wall,
        "fig22_events_per_sec_world65536": rate,
    }
    return metrics, report


def check_counters(sim_metrics: dict) -> list[str]:
    counters = sim_metrics.get("counters", {})
    problems = []
    for name in REQUIRED_NONZERO_COUNTERS:
        if counters.get(name, 0) <= 0:
            problems.append(
                f"  {name}: expected nonzero, got "
                f"{counters.get(name)!r}")
    hist = sim_metrics.get("histograms", {}).get(
        "sweep.task_wall_seconds", {})
    if hist.get("count", 0) <= 0:
        problems.append(
            "  sweep.task_wall_seconds: histogram is empty")
    return problems


def gate(metrics: dict[str, float], baseline: dict[str, float],
         threshold: float) -> tuple[list[str], dict[str, float]]:
    failures = []
    ratios = {}
    for key, base in baseline.items():
        if key not in metrics or base <= 0.0:
            continue
        cur = metrics[key]
        ratio = cur / base
        ratios[key] = ratio
        if key in WALL_METRICS:
            regressed = ratio > 1.0 + threshold
            direction = "slower"
        else:
            regressed = ratio < 1.0 - threshold
            direction = "lower"
        if regressed:
            failures.append(
                f"  {key}: {cur:.4g} vs baseline {base:.4g} "
                f"({abs(ratio - 1.0) * 100.0:.1f}% {direction})")
    return failures, ratios


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (Release)")
    ap.add_argument("--threads", type=int, default=0,
                    help="SweepRunner workers (0 = one per core)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    ap.add_argument("--output", default="BENCH_sweep.json",
                    help="where to write the measurement artifact")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite tools/perf_baseline.json instead of "
                         "gating")
    args = ap.parse_args()

    build = Path(args.build_dir)
    metrics = run_micro(build)
    metrics.update(run_critpath_overhead(build))
    run_rundiff_null(build, args.threads, Path(args.output))
    wall, sim_metrics = run_sweep(
        build, args.threads,
        Path(args.output).with_suffix(".metrics.json"))
    metrics.update(wall)
    xval_metrics, xval_report = run_xval(
        build, args.threads,
        Path(args.output).with_suffix(".xval.json"))
    metrics.update(xval_metrics)
    fig22_metrics, fig22_report = run_fig22(
        build, args.threads,
        Path(args.output).with_suffix(".fig22.json"))
    metrics.update(fig22_metrics)

    counter_problems = check_counters(sim_metrics)
    if counter_problems:
        print("perf_smoke: self-profiling counters unwired:",
              file=sys.stderr)
        print("\n".join(counter_problems), file=sys.stderr)
        return 1

    speedup = xval_metrics["backend_xval_speedup"]
    if speedup < XVAL_SPEEDUP_FLOOR:
        print(f"perf_smoke: analytical backend speedup {speedup:.0f}x "
              f"is below the {XVAL_SPEEDUP_FLOOR:.0f}x floor",
              file=sys.stderr)
        return 1

    collapsed_rate = metrics["events_per_sec_world65536"]
    if collapsed_rate < COLLAPSED_RATE_FLOOR:
        print(f"perf_smoke: collapsed aggregate event rate "
              f"{collapsed_rate:.3g} ev/s at world 65536 is below "
              f"the {COLLAPSED_RATE_FLOOR:.0e} floor",
              file=sys.stderr)
        return 1

    if args.update_baseline:
        BASELINE.write_text(json.dumps(metrics, indent=2,
                                       sort_keys=True) + "\n")
        print(f"perf_smoke: baseline updated at {BASELINE}")
        return 0

    if not BASELINE.exists():
        print(f"perf_smoke: no baseline at {BASELINE}; run with "
              "--update-baseline first", file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE.read_text())

    failures, ratios = gate(metrics, baseline, args.threshold)
    artifact = {
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "threads": args.threads,
        "threshold": args.threshold,
        "metrics": metrics,
        "baseline": baseline,
        "current_over_baseline": ratios,
        "self_profile": sim_metrics,
        "backend_xval": xval_report,
        "fig22_mechanistic": fig22_report,
    }
    Path(args.output).write_text(json.dumps(artifact, indent=2,
                                            sort_keys=True) + "\n")
    print(f"perf_smoke: wrote {args.output}")
    for key in sorted(metrics):
        mark = " (wall)" if key in WALL_METRICS else ""
        ratio = ratios.get(key)
        rel = f"  [{ratio:.2f}x baseline]" if ratio else ""
        print(f"  {key}{mark}: {metrics[key]:.4g}{rel}")
    if failures:
        print(f"\nperf_smoke: regression beyond "
              f"{args.threshold * 100.0:.0f}%:")
        print("\n".join(failures))
        return 1
    print("perf_smoke: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
