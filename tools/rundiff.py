#!/usr/bin/env python3
"""Explain why run B is slower (or faster) than run A.

Consumes two critical-path attribution reports — either the standalone
bench output ({"label": ..., "critical_path": {...}}), a full
_report.json (top-level "critical_path" key), or a bare critical-path
object — and diffs them hierarchically along the cause tree:

  wall time
    +- cause classes (startup, compute, comm.collective.*, comm.p2p.*,
    |    wait.straggler, bubble.pipeline) — a partition of the wall,
    |    so cause deltas sum to the wall delta up to attribution noise
    +- per-device path attribution (which GPU the path ran through)
    +- throttle annotation (thermal / power_cap / fault elongation,
         cross-cutting: also broken down per device)

The headline is a one-line explanation naming the dominant regression
cause and the dominant device, e.g.:

  run B is 12.3% slower than run A: wait.straggler +41.2 ms/iter
  (78% of the regression); dominant device GPU27 (+39.0 ms/iter,
  power_cap throttle +38.5 ms)

Usage:
  rundiff.py A.json B.json [--json OUT] [--threshold 0.01]
             [--expect-null] [--top N]

--expect-null inverts the gate: exit 1 unless the two runs are
equivalent within the threshold (used by perf_smoke on a double-run
pair — a non-null diff there means nondeterminism). The comparison
uses mean (measured-iteration) attribution; folded runs diff like any
other as long as both sides fold identically (a folded/unfolded mix is
refused — the representative walls are not comparable).

Exit status: 0 verdict matches expectation, 1 it does not,
2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

CAUSE_CLASSES = (
    "startup",
    "compute",
    "comm.collective.scaleup",
    "comm.collective.internode",
    "comm.p2p.scaleup",
    "comm.p2p.internode",
    "wait.straggler",
    "bubble.pipeline",
)
THROTTLE_SLOTS = ("thermal", "power_cap", "fault")


def die(msg: str) -> None:
    print(f"rundiff: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path: str) -> tuple[str, dict]:
    """Return (label, critical_path object) from any accepted shape."""
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        die(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        die(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict):
        die(f"{path}: top level is not an object")
    label = path
    if isinstance(doc.get("label"), str):
        label = doc["label"]
    elif isinstance(doc.get("summary"), dict) and isinstance(
            doc["summary"].get("label"), str):
        label = doc["summary"]["label"]
    cp = doc.get("critical_path", doc)
    if not isinstance(cp, dict) or "mean" not in cp:
        die(f"{path}: no critical-path report (want a 'critical_path' "
            "object with a 'mean' attribution)")
    return label, cp


def mean_of(cp: dict) -> dict:
    mean = cp.get("mean")
    if not isinstance(mean, dict) or "wall_s" not in mean:
        die("critical-path report has no mean attribution")
    return mean


def device_map(mean: dict, key: str) -> dict[int, float]:
    out: dict[int, float] = {}
    for entry in mean.get("devices", []):
        out[int(entry["gpu"])] = float(entry.get(key, 0.0))
    return out


def fmt_s(seconds: float) -> str:
    a = abs(seconds)
    if a >= 1.0:
        return f"{seconds:+.3f} s"
    if a >= 1e-3:
        return f"{seconds * 1e3:+.2f} ms"
    return f"{seconds * 1e6:+.1f} us"


def diff(a_label: str, a: dict, b_label: str, b: dict,
         threshold: float, top: int) -> dict:
    if bool(a.get("folded")) != bool(b.get("folded")) or int(
            a.get("multiplicity", 1)) != int(b.get("multiplicity", 1)):
        die("refusing to diff a folded run against an unfolded one "
            f"(A: folded={a.get('folded')} x{a.get('multiplicity')}, "
            f"B: folded={b.get('folded')} x{b.get('multiplicity')}): "
            "representative iteration walls are not comparable")

    am, bm = mean_of(a), mean_of(b)
    wall_a, wall_b = float(am["wall_s"]), float(bm["wall_s"])
    delta = wall_b - wall_a
    ref = max(wall_a, wall_b, 1e-12)
    rel = delta / ref

    causes = {}
    for name in CAUSE_CLASSES:
        ca = float(am.get("causes", {}).get(name, 0.0))
        cb = float(bm.get("causes", {}).get(name, 0.0))
        causes[name] = {
            "a_s": ca,
            "b_s": cb,
            "delta_s": cb - ca,
            "share_of_regression":
                (cb - ca) / delta if abs(delta) > 1e-12 else 0.0,
        }

    throttle = {}
    for slot in THROTTLE_SLOTS:
        ta = float(am.get("throttle", {}).get(slot, 0.0))
        tb = float(bm.get("throttle", {}).get(slot, 0.0))
        throttle[slot] = {"a_s": ta, "b_s": tb, "delta_s": tb - ta}

    dev_a = device_map(am, "path_s")
    dev_b = device_map(bm, "path_s")
    devices = []
    for dev in sorted(set(dev_a) | set(dev_b)):
        entry = {
            "gpu": dev,
            "a_s": dev_a.get(dev, 0.0),
            "b_s": dev_b.get(dev, 0.0),
            "delta_s": dev_b.get(dev, 0.0) - dev_a.get(dev, 0.0),
        }
        for slot in THROTTLE_SLOTS:
            key = f"throttle_{slot}_s"
            entry[f"throttle_{slot}_delta_s"] = (
                device_map(bm, key).get(dev, 0.0)
                - device_map(am, key).get(dev, 0.0))
        devices.append(entry)
    devices.sort(key=lambda e: (-abs(e["delta_s"]), e["gpu"]))
    devices = devices[:top]

    # Null verdict: the walls agree AND no cause class moved by more
    # than threshold * wall. Cause classes partition the wall, so this
    # also bounds internal attribution churn between equal-wall runs.
    null_diff = abs(rel) <= threshold and all(
        abs(c["delta_s"]) <= threshold * ref
        for c in causes.values())

    dominant_cause = max(
        CAUSE_CLASSES,
        key=lambda n: (causes[n]["delta_s"]
                       if delta >= 0.0 else -causes[n]["delta_s"]))
    dominant_device = None
    if devices and abs(devices[0]["delta_s"]) > 0.0:
        dominant_device = devices[0]["gpu"]

    if null_diff:
        explanation = (
            f"runs are equivalent within {threshold * 100.0:.1f}% "
            f"(wall {wall_a:.6f}s vs {wall_b:.6f}s)")
    else:
        direction = "slower" if delta > 0.0 else "faster"
        dc = causes[dominant_cause]
        explanation = (
            f"run B is {abs(rel) * 100.0:.1f}% {direction} than run A: "
            f"{dominant_cause} {fmt_s(dc['delta_s'])}/iter "
            f"({abs(dc['share_of_regression']) * 100.0:.0f}% of the "
            f"{'regression' if delta > 0 else 'improvement'})")
        if dominant_device is not None:
            dd = devices[0]
            explanation += (f"; dominant device GPU{dd['gpu']} "
                            f"({fmt_s(dd['delta_s'])}/iter")
            worst_slot = max(
                THROTTLE_SLOTS,
                key=lambda s: abs(dd[f"throttle_{s}_delta_s"]))
            worst = dd[f"throttle_{worst_slot}_delta_s"]
            if abs(worst) > threshold * ref:
                explanation += (f", {worst_slot} throttle "
                                f"{fmt_s(worst)}")
            explanation += ")"

    return {
        "a": a_label,
        "b": b_label,
        "wall_a_s": wall_a,
        "wall_b_s": wall_b,
        "wall_delta_s": delta,
        "wall_delta_rel": rel,
        "threshold": threshold,
        "null_diff": null_diff,
        "dominant_cause": None if null_diff else dominant_cause,
        "dominant_device": None if null_diff else dominant_device,
        "causes": causes,
        "throttle": throttle,
        "devices": devices,
        "explanation": explanation,
    }


def print_report(result: dict) -> None:
    print(f"rundiff: A = {result['a']}")
    print(f"rundiff: B = {result['b']}")
    print(f"  wall: {result['wall_a_s']:.6f}s -> "
          f"{result['wall_b_s']:.6f}s "
          f"({fmt_s(result['wall_delta_s'])}, "
          f"{result['wall_delta_rel'] * 100.0:+.2f}%)")
    print("  causes (delta, share of wall delta):")
    for name in CAUSE_CLASSES:
        c = result["causes"][name]
        if c["a_s"] == 0.0 and c["b_s"] == 0.0:
            continue
        print(f"    {name:<26} {c['a_s']:.6f}s -> {c['b_s']:.6f}s  "
              f"{fmt_s(c['delta_s'])}  "
              f"({c['share_of_regression'] * 100.0:+.0f}%)")
    moved = [s for s in THROTTLE_SLOTS
             if abs(result["throttle"][s]["delta_s"]) > 0.0]
    if moved:
        print("  throttle elongation (cross-cutting):")
        for slot in moved:
            t = result["throttle"][slot]
            print(f"    {slot:<26} {t['a_s']:.6f}s -> "
                  f"{t['b_s']:.6f}s  {fmt_s(t['delta_s'])}")
    if result["devices"]:
        print("  top path movers by device:")
        for d in result["devices"]:
            print(f"    GPU{d['gpu']:<4} {d['a_s']:.6f}s -> "
                  f"{d['b_s']:.6f}s  {fmt_s(d['delta_s'])}")
    print(f"\n{result['explanation']}")


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("run_a", help="baseline report JSON")
    ap.add_argument("run_b", help="candidate report JSON")
    ap.add_argument("--json", default="",
                    help="also write the machine-readable diff here")
    ap.add_argument("--threshold", type=float, default=0.01,
                    help="relative wall/cause change treated as "
                         "significant (default 0.01)")
    ap.add_argument("--expect-null", action="store_true",
                    help="exit 1 unless the runs are equivalent "
                         "within the threshold")
    ap.add_argument("--top", type=int, default=8,
                    help="device movers to report (default 8)")
    args = ap.parse_args()

    a_label, a = load(args.run_a)
    b_label, b = load(args.run_b)
    result = diff(a_label, a, b_label, b, args.threshold, args.top)
    print_report(result)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump(result, f, indent=2, sort_keys=True)
                f.write("\n")
        except OSError as e:
            die(f"cannot write {args.json}: {e}")
    if args.expect_null and not result["null_diff"]:
        print("rundiff: FAIL: expected a null diff", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
