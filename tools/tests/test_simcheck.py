#!/usr/bin/env python3
"""Fixture tests for tools/simcheck (stdlib unittest; no pytest).

Each of the seven rules must fire on its bad fixture and stay silent on
the clean tree; the allowlist must suppress and --check-allowlist must
flag stale entries; the JSON report must carry the documented schema.
Tests run the internal frontend so they pass in environments without
libclang; when clang.cindex IS importable, a cross-frontend smoke test
checks the clang path agrees on the fixtures.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
SIMCHECK = REPO / "tools" / "simcheck" / "simcheck.py"
FIXTURES = HERE / "fixtures" / "simcheck"

ALL_RULES = (
    "det-unordered-iter", "det-pointer-key", "det-pointer-compare",
    "det-unseeded-rng", "unit-raw-double", "unit-value-escape",
    "hot-alloc",
)


def run_simcheck(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SIMCHECK), *argv],
        capture_output=True, text=True, cwd=REPO)


def bad_tree_args(frontend: str = "internal") -> list[str]:
    return ["--frontend", frontend,
            "--src", str(FIXTURES / "bad" / "src"),
            "--repo-root", str(FIXTURES / "bad"),
            "--allowlist", "/dev/null"]


class BadFixtureTest(unittest.TestCase):
    def test_every_rule_fires(self):
        r = run_simcheck(*bad_tree_args())
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        for rule in ALL_RULES:
            self.assertIn(f"[{rule}]", r.stdout,
                          f"rule {rule} did not fire:\n{r.stdout}")

    def test_expected_sites(self):
        r = run_simcheck(*bad_tree_args())
        expect = (
            ("det-unordered-iter", "det_unordered.cc"),
            ("det-pointer-key", "det_pointer_key.cc"),
            ("det-pointer-compare", "det_pointer_compare.cc"),
            ("det-unseeded-rng", "det_unseeded_rng.cc"),
            ("unit-raw-double", "unit_raw_double.hh"),
            ("unit-value-escape", "unit_value_escape.hh"),
            ("hot-alloc", "hot_alloc.cc"),
        )
        for rule, fname in expect:
            self.assertRegex(r.stdout, rf"{fname}:\d+: \[{rule}\]")

    def test_hot_alloc_reaches_through_helper(self):
        # recordEvent allocates and is only reachable via runOne.
        r = run_simcheck(*bad_tree_args())
        self.assertRegex(
            r.stdout, r"hot_alloc\.cc:17: \[hot-alloc\]")

    def test_rule_filter(self):
        r = run_simcheck(*bad_tree_args(), "--rules", "det-unseeded-rng")
        self.assertIn("[det-unseeded-rng]", r.stdout)
        self.assertNotIn("[hot-alloc]", r.stdout)

    def test_unknown_rule_rejected(self):
        r = run_simcheck(*bad_tree_args(), "--rules", "no-such-rule")
        self.assertEqual(r.returncode, 2)


class CleanFixtureTest(unittest.TestCase):
    def test_clean_tree_is_clean(self):
        r = run_simcheck("--frontend", "internal",
                         "--src", str(FIXTURES / "clean" / "src"),
                         "--repo-root", str(FIXTURES / "clean"),
                         "--allowlist", "/dev/null")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("clean", r.stdout)


class AllowlistTest(unittest.TestCase):
    def test_allowlist_suppresses(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("det-unseeded-rng:det_unseeded_rng.cc:mt19937\n")
            allow = f.name
        r = run_simcheck("--frontend", "internal",
                         "--src", str(FIXTURES / "bad" / "src"),
                         "--repo-root", str(FIXTURES / "bad"),
                         "--allowlist", allow)
        self.assertEqual(r.returncode, 1)  # other rules still fire
        self.assertNotIn("[det-unseeded-rng]", r.stdout)

    def test_stale_entry_detected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("*:no_such_file.cc:no_such_line\n")
            allow = f.name
        r = run_simcheck("--frontend", "internal",
                         "--src", str(FIXTURES / "clean" / "src"),
                         "--repo-root", str(FIXTURES / "clean"),
                         "--allowlist", allow, "--check-allowlist")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("stale", r.stderr)

    def test_malformed_entry_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("only-one-field\n")
            allow = f.name
        r = run_simcheck(*bad_tree_args()[:-2], "--allowlist", allow)
        self.assertEqual(r.returncode, 2)
        self.assertIn("malformed", r.stderr)

    def test_repo_src_clean_and_allowlist_fresh(self):
        r = run_simcheck("--frontend", "internal", "--check-allowlist")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


class JsonReportTest(unittest.TestCase):
    def test_schema(self):
        with tempfile.NamedTemporaryFile(suffix=".json",
                                         delete=False) as f:
            out = f.name
        run_simcheck(*bad_tree_args(), "--json", out)
        payload = json.loads(Path(out).read_text())
        self.assertEqual(payload["schema_version"], 1)
        self.assertEqual(payload["tool"], "simcheck")
        self.assertEqual(payload["frontend"], "internal")
        self.assertEqual(
            {r["id"] for r in payload["rules"]}, set(ALL_RULES))
        self.assertGreater(payload["summary"]["active"], 0)
        self.assertEqual(payload["summary"]["suppressed"], 0)
        for finding in payload["findings"]:
            for key in ("rule", "file", "line", "message",
                        "suppressed"):
                self.assertIn(key, finding)
            self.assertIn(finding["rule"], ALL_RULES)


class ClangFrontendSmokeTest(unittest.TestCase):
    """Runs only where python3-clang is installed (e.g. the CI job)."""

    def setUp(self):
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            self.skipTest("clang.cindex not installed")

    def test_clang_frontend_agrees_on_fixtures(self):
        r = run_simcheck(*bad_tree_args("clang"))
        if r.returncode == 2:
            self.skipTest(f"clang frontend unavailable: {r.stderr}")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        for rule in ALL_RULES:
            self.assertIn(f"[{rule}]", r.stdout,
                          f"rule {rule} did not fire under libclang:\n"
                          f"{r.stdout}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
