// Fixture: the clean counterpart — typed quantities on the API, the
// escape hatch never crosses a public boundary.
#ifndef FIXTURE_CLEAN_MODEL_HH
#define FIXTURE_CLEAN_MODEL_HH

namespace fixture {

struct Watts {
    double v;
    double value() const { return v; }
};

class Device {
public:
    void setBudget(Watts budget);
    Watts power() const { return draw; }

private:
    Watts draw{0.0};
};

} // namespace fixture

#endif
