// Fixture: deterministic, allocation-free counterparts of every bad
// pattern: seeded RNG, id-keyed ordered map, stable-id ordering, and a
// dispatch root that only writes through preallocated storage.
#include <algorithm>
#include <array>
#include <map>
#include <random>
#include <vector>

namespace fixture {

struct Node {
    int id;
};

double
roll(unsigned seed)
{
    std::mt19937 gen(seed);  // explicit seed from config
    return static_cast<double>(gen());
}

int
countById(const Node& a, const Node& b)
{
    std::map<int, int> byId;  // keyed by stable id, not pointer
    byId[a.id] = 1;
    byId[b.id] = 2;
    int total = 0;
    for (const auto& kv : byId)  // ordered container: fine to iterate
        total += kv.second;
    return total;
}

void
sortThem(std::vector<Node*>& nodes)
{
    std::sort(nodes.begin(), nodes.end(),
              [](const Node* a, const Node* b) { return a->id < b->id; });
}

class EventQueue {
public:
    void runOne();

private:
    std::array<int, 64> slots{};
    int used = 0;
};

void
EventQueue::runOne()
{
    slots[static_cast<unsigned>(used % 64)] = used;  // no allocation
    ++used;
}

} // namespace fixture
