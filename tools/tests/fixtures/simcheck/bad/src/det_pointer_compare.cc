// Fixture: det-pointer-compare must fire on pointer ordering and on a
// default-comparator sort of a pointer vector.
#include <algorithm>
#include <vector>

namespace fixture {

struct Widget {
    int id;
};

bool
before(Widget* a, Widget* b)
{
    return a < b;  // pointer ordering
}

void
sortThem(std::vector<Widget*>& widgets)
{
    std::sort(widgets.begin(), widgets.end());  // default comparator
}

} // namespace fixture
