// Fixture: unit-value-escape must fire on a public header API that
// returns Quantity::value() as a raw double.
#ifndef FIXTURE_UNIT_VALUE_ESCAPE_HH
#define FIXTURE_UNIT_VALUE_ESCAPE_HH

namespace fixture {

struct Watts {
    double v;
    double value() const { return v; }
};

class Device {
public:
    double power() const { return draw.value(); }  // escapes the unit
private:
    Watts draw{0.0};
};

} // namespace fixture

#endif
