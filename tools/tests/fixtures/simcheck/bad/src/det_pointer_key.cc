// Fixture: det-pointer-key must fire on a pointer-keyed ordered map.
#include <map>

namespace fixture {

struct Node {
    int id;
};

int
countByAddress(Node* a, Node* b)
{
    std::map<Node*, int> byPtr;
    byPtr[a] = 1;
    byPtr[b] = 2;
    return static_cast<int>(byPtr.size());
}

} // namespace fixture
