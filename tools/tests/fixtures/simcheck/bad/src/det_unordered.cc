// Fixture: det-unordered-iter must fire on both forms.
#include <unordered_map>

namespace fixture {

int
sumValues()
{
    std::unordered_map<int, int> counts;
    int total = 0;
    for (const auto& kv : counts)  // range-for over unordered
        total += kv.second;
    auto it = counts.begin();      // iterator over unordered
    (void)it;
    return total;
}

} // namespace fixture
