// Fixture: hot-alloc must fire on allocations reachable from the
// dispatch root (named EventQueue::runOne to match the default roots)
// both directly and through a helper call.
#include <vector>

namespace fixture {

struct Event {
    int id;
};

std::vector<Event> g_log;

void
recordEvent(int id)
{
    g_log.push_back(Event{id});  // reachable via runOne -> recordEvent
}

class EventQueue {
public:
    void runOne();

private:
    std::vector<int> pending;
};

void
EventQueue::runOne()
{
    pending.push_back(1);  // directly in the dispatch root
    recordEvent(7);
}

} // namespace fixture
