// Fixture: det-unseeded-rng must fire on a default-constructed engine.
#include <random>

namespace fixture {

double
roll()
{
    std::mt19937 gen;  // no seed: implementation-defined default
    return static_cast<double>(gen());
}

} // namespace fixture
