// Fixture: unit-raw-double must fire on parameter, return, and member.
#ifndef FIXTURE_UNIT_RAW_DOUBLE_HH
#define FIXTURE_UNIT_RAW_DOUBLE_HH

namespace fixture {

class PowerModel {
public:
    void setBudget(double budget_w);  // parameter
    double energy_j() const;          // return
private:
    double idle_w = 12.5;             // member
};

} // namespace fixture

#endif
