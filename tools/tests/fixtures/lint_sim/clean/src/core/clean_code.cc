// Fixture: clean counterpart. Prose below mentions rand() and
// std::random_device only in comments, which must not trip the lint:
// rand() is banned, std::random_device is banned, getenv is banned.
/* Block comments mentioning steady_clock must not trip either. */

namespace fixture {

// A string containing a protocol separator is not a comment start.
const char* kDocsUrl = "https://example.com/docs";

unsigned
next(unsigned state)
{
    return state * 1664525u + 1013904223u;
}

} // namespace fixture
