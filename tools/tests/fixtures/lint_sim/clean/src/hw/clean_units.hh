// Fixture: typed parameters in a physics header are fine.
#ifndef FIXTURE_CLEAN_UNITS_HH
#define FIXTURE_CLEAN_UNITS_HH

namespace fixture {

struct Watts {
    double v;
};

void setPower(Watts power);

} // namespace fixture

#endif
