// Fixture: hot-path rules must fire in src/sim/.
#include <functional>
#include <memory>

namespace fixture {

struct Event {
    int id;
};

std::function<void()> g_callback;

void
record()
{
    auto ev = std::make_shared<Event>();
    (void)ev;
}

} // namespace fixture
