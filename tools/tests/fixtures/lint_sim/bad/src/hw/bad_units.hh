// Fixture: raw-double-unit must fire in a physics header.
#ifndef FIXTURE_BAD_UNITS_HH
#define FIXTURE_BAD_UNITS_HH

namespace fixture {

void setPower(double power_w);

} // namespace fixture

#endif
