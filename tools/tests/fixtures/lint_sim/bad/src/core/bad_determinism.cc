// Fixture: determinism rules must fire; the string-literal line is the
// strip_comment regression — a `//` inside the literal must not hide
// the banned construct after it.
#include <cstdlib>
#include <random>

namespace fixture {

unsigned
entropy()
{
    const char* docs = "https://example.com/docs"; std::random_device rd;
    (void)docs;
    unsigned r = static_cast<unsigned>(rand());
    const char* home = getenv("HOME");
    (void)home;
    return r + rd();
}

} // namespace fixture
