// Fixture: the iostream rule must fire on the include.
#include <iostream>

namespace fixture {

void
shout()
{
    std::cout << "library code must not do this\n";
}

} // namespace fixture
