// Fixture: obs-header-alloc must fire on an allocating increment path.
#ifndef FIXTURE_BAD_COUNTER_HH
#define FIXTURE_BAD_COUNTER_HH

#include <vector>

namespace fixture {

class Counter {
public:
    void increment(int v) { samples.push_back(v); }

private:
    std::vector<int> samples;
};

} // namespace fixture

#endif
