#!/usr/bin/env python3
"""Fixture tests for tools/lint_sim.py (stdlib unittest; no pytest).

Every rule family must fire on the bad fixture tree and stay silent on
the clean tree; strip_comments carries the string-literal regression
(a `//` inside a literal used to truncate the line and hide banned
constructs after it); --check-allowlist must flag entries that no
longer suppress anything.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINT = REPO / "tools" / "lint_sim.py"
FIXTURES = HERE / "fixtures" / "lint_sim"

sys.path.insert(0, str(REPO / "tools"))
from lint_sim import strip_comments  # noqa: E402


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), *argv],
        capture_output=True, text=True, cwd=REPO)


class StripCommentsTest(unittest.TestCase):
    def test_slashes_inside_string_are_not_a_comment(self):
        # Regression: line.find("//") used to truncate here and hide
        # the random_device after the literal.
        line = 'const char* d = "https://x.io"; std::random_device rd;'
        code, in_block = strip_comments(line)
        self.assertIn("random_device", code)
        self.assertIn("https://x.io", code)
        self.assertFalse(in_block)

    def test_real_trailing_comment_is_dropped(self):
        code, _ = strip_comments("int x = 1; // rand() in prose")
        self.assertNotIn("rand", code)
        self.assertIn("int x = 1;", code)

    def test_escaped_quote_does_not_end_string(self):
        code, _ = strip_comments(r'auto s = "a\"b // c"; f();')
        self.assertIn("f();", code)
        self.assertIn(r'"a\"b // c"', code)

    def test_inline_block_comment_removed(self):
        code, in_block = strip_comments(
            "int y; /* steady_clock prose */ g();")
        self.assertNotIn("steady_clock", code)
        self.assertIn("g();", code)
        self.assertFalse(in_block)

    def test_multiline_block_comment_state(self):
        code, in_block = strip_comments("start /* opens")
        self.assertTrue(in_block)
        self.assertEqual(code.strip(), "start")
        code, in_block = strip_comments("rand() still inside", True)
        self.assertTrue(in_block)
        self.assertEqual(code, "")
        code, in_block = strip_comments("done */ h();", True)
        self.assertFalse(in_block)
        self.assertIn("h();", code)

    def test_comment_openers_inside_string(self):
        code, in_block = strip_comments('auto s = "/* not a comment";')
        self.assertFalse(in_block)
        self.assertIn("/* not a comment", code)


class FixtureTest(unittest.TestCase):
    def test_bad_tree_fires_every_rule_family(self):
        r = run_lint("--src", str(FIXTURES / "bad" / "src"),
                     "--allowlist", "/dev/null")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        for rule in ("random-device", "rand", "getenv", "iostream",
                     "raw-double-unit", "std-function", "make-shared",
                     "obs-header-alloc"):
            self.assertIn(f"[{rule}]", r.stdout,
                          f"rule {rule} did not fire:\n{r.stdout}")

    def test_string_literal_regression_fires(self):
        # The banned construct sits AFTER a string containing '//'.
        r = run_lint("--src", str(FIXTURES / "bad" / "src"),
                     "--allowlist", "/dev/null")
        self.assertRegex(
            r.stdout,
            r"bad_determinism\.cc:12: \[random-device\]")

    def test_clean_tree_is_clean(self):
        r = run_lint("--src", str(FIXTURES / "clean" / "src"),
                     "--allowlist", "/dev/null")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("clean", r.stdout)

    def test_allowlist_suppresses(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("bad_iostream.cc:#include <iostream>\n")
            allow = f.name
        r = run_lint("--src", str(FIXTURES / "bad" / "src"),
                     "--allowlist", allow)
        self.assertEqual(r.returncode, 1)  # other findings remain
        self.assertNotIn("[iostream]", r.stdout)

    def test_stale_allowlist_detected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("no_such_file.cc:no_such_line\n")
            allow = f.name
        r = run_lint("--src", str(FIXTURES / "clean" / "src"),
                     "--allowlist", allow, "--check-allowlist")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("stale", r.stderr)
        self.assertIn("no_such_file.cc:no_such_line", r.stderr)

    def test_repo_src_is_clean_with_fresh_allowlist(self):
        r = run_lint("--check-allowlist")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
