#!/usr/bin/env python3
"""Fixture suite for tools/rundiff.py: a known regression pair (clean
vs node-power-fault straggler) must be explained by wait.straggler on
the faulty GPU, and an identical pair must produce a null diff."""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent
RUNDIFF = TOOLS / "rundiff.py"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "rundiff"
CLEAN = FIXTURES / "clean.json"
STRAGGLER = FIXTURES / "straggler.json"


def run_rundiff(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(RUNDIFF), *args],
        capture_output=True, text=True)


class RegressionPair(unittest.TestCase):
    """clean -> straggler: 12.3% slower, wait.straggler on GPU27."""

    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.TemporaryDirectory()
        cls.json_path = Path(cls.tmp.name) / "diff.json"
        cls.proc = run_rundiff(str(CLEAN), str(STRAGGLER),
                               "--json", str(cls.json_path))
        cls.result = json.loads(cls.json_path.read_text())

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def test_exit_zero_without_expectation(self):
        self.assertEqual(self.proc.returncode, 0, self.proc.stderr)

    def test_not_null(self):
        self.assertFalse(self.result["null_diff"])

    def test_wall_delta(self):
        self.assertAlmostEqual(self.result["wall_delta_s"], 0.0412,
                               places=9)
        self.assertAlmostEqual(self.result["wall_delta_rel"],
                               0.0412 / 0.3762, places=6)

    def test_dominant_cause_is_straggler_wait(self):
        self.assertEqual(self.result["dominant_cause"],
                         "wait.straggler")

    def test_dominant_device_is_faulty_gpu(self):
        self.assertEqual(self.result["dominant_device"], 27)

    def test_cause_deltas_partition_wall_delta(self):
        total = sum(c["delta_s"]
                    for c in self.result["causes"].values())
        self.assertAlmostEqual(total, self.result["wall_delta_s"],
                               places=9)

    def test_straggler_share_of_regression(self):
        share = self.result["causes"]["wait.straggler"][
            "share_of_regression"]
        self.assertAlmostEqual(share, 0.0322 / 0.0412, places=6)

    def test_throttle_attribution_surfaces_power_cap(self):
        self.assertAlmostEqual(
            self.result["throttle"]["power_cap"]["delta_s"], 0.0385,
            places=9)
        top = self.result["devices"][0]
        self.assertEqual(top["gpu"], 27)
        self.assertAlmostEqual(top["throttle_power_cap_delta_s"],
                               0.0385, places=9)

    def test_explanation_names_cause_and_device(self):
        self.assertIn("wait.straggler", self.result["explanation"])
        self.assertIn("GPU27", self.result["explanation"])
        self.assertIn("slower", self.result["explanation"])
        self.assertIn("wait.straggler", self.proc.stdout)
        self.assertIn("GPU27", self.proc.stdout)

    def test_expect_null_fails_on_regression(self):
        proc = run_rundiff(str(CLEAN), str(STRAGGLER),
                           "--expect-null")
        self.assertEqual(proc.returncode, 1)


class IdenticalPair(unittest.TestCase):
    """A report diffed against itself is a null diff."""

    def test_expect_null_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "null.json"
            proc = run_rundiff(str(CLEAN), str(CLEAN),
                               "--expect-null", "--json", str(out))
            self.assertEqual(proc.returncode, 0,
                             proc.stdout + proc.stderr)
            result = json.loads(out.read_text())
        self.assertTrue(result["null_diff"])
        self.assertIsNone(result["dominant_cause"])
        self.assertIsNone(result["dominant_device"])
        self.assertIn("equivalent", result["explanation"])


class InputHandling(unittest.TestCase):
    def test_bare_critical_path_object_accepted(self):
        doc = json.loads(CLEAN.read_text())["critical_path"]
        with tempfile.TemporaryDirectory() as tmp:
            bare = Path(tmp) / "bare.json"
            bare.write_text(json.dumps(doc))
            proc = run_rundiff(str(bare), str(CLEAN), "--expect-null")
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)

    def test_folded_vs_unfolded_refused(self):
        doc = json.loads(CLEAN.read_text())
        doc["critical_path"]["folded"] = True
        doc["critical_path"]["multiplicity"] = 8
        with tempfile.TemporaryDirectory() as tmp:
            folded = Path(tmp) / "folded.json"
            folded.write_text(json.dumps(doc))
            proc = run_rundiff(str(CLEAN), str(folded))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("folded", proc.stderr)

    def test_missing_critical_path_refused(self):
        with tempfile.TemporaryDirectory() as tmp:
            bogus = Path(tmp) / "bogus.json"
            bogus.write_text('{"summary":{"label":"x"}}')
            proc = run_rundiff(str(bogus), str(CLEAN))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
